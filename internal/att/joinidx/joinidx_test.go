package joinidx_test

import (
	"testing"

	"dmx/internal/att/joinidx"
	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func deptSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "dno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "name", Kind: types.KindString},
	)
}

func empSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "eno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "dno", Kind: types.KindInt},
	)
}

func setup(t *testing.T, env *core.Env) (*core.Relation, *core.Relation) {
	t.Helper()
	tx := env.Begin()
	env.CreateRelation(tx, "dept", deptSchema(), "memory", nil)
	env.CreateRelation(tx, "emp", empSchema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "emp", "joinindex",
		core.AttrList{"name": "empdept", "on": "dno", "peer": "dept"}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "dept", "joinindex",
		core.AttrList{"name": "empdept", "on": "dno", "peer": "emp"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	d, _ := env.OpenRelationByName("dept")
	e, _ := env.OpenRelationByName("emp")
	return d, e
}

func inst(t *testing.T, r *core.Relation) *joinidx.Instance {
	t.Helper()
	a, err := r.Env().AttachmentInstance(r.Desc(), core.AttJoin)
	if err != nil {
		t.Fatal(err)
	}
	return a.(*joinidx.Instance)
}

func TestPairsEnumerateEquiJoin(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setup(t, env)
	tx := env.Begin()
	d.Insert(tx, types.Record{types.Int(10), types.Str("eng")})
	d.Insert(tx, types.Record{types.Int(20), types.Str("ops")})
	e.Insert(tx, types.Record{types.Int(1), types.Int(10)})
	e.Insert(tx, types.Record{types.Int(2), types.Int(10)})
	e.Insert(tx, types.Record{types.Int(3), types.Int(20)})
	e.Insert(tx, types.Record{types.Int(4), types.Int(99)}) // dangling
	tx.Commit()

	pairs, err := inst(t, e).Pairs("empdept")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	// Each pair resolves to records whose join values match.
	tx2 := env.Begin()
	for _, p := range pairs {
		er, err := e.Fetch(tx2, p.Own, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := d.Fetch(tx2, p.Peer, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if er[1].AsInt() != dr[0].AsInt() {
			t.Fatalf("pair mismatch: emp.dno=%d dept.dno=%d", er[1].AsInt(), dr[0].AsInt())
		}
	}
	tx2.Commit()
}

func TestMaintainedUnderModifications(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setup(t, env)
	tx := env.Begin()
	d.Insert(tx, types.Record{types.Int(10), types.Str("eng")})
	ek, _ := e.Insert(tx, types.Record{types.Int(1), types.Int(10)})
	if pairs, _ := inst(t, e).Pairs("empdept"); len(pairs) != 1 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	// Update moving the employee away breaks the pair.
	e.Update(tx, ek, types.Record{types.Int(1), types.Int(55)})
	if pairs, _ := inst(t, e).Pairs("empdept"); len(pairs) != 0 {
		t.Fatal("stale pair after update")
	}
	e.Update(tx, ek, types.Record{types.Int(1), types.Int(10)})
	e.Delete(tx, ek)
	if pairs, _ := inst(t, e).Pairs("empdept"); len(pairs) != 0 {
		t.Fatal("stale pair after delete")
	}
	tx.Commit()
}

func TestPeerKeysProbe(t *testing.T) {
	env := core.NewEnv(core.Config{})
	d, e := setup(t, env)
	tx := env.Begin()
	dk, _ := d.Insert(tx, types.Record{types.Int(10), types.Str("eng")})
	e.Insert(tx, types.Record{types.Int(1), types.Int(10)})
	tx.Commit()

	keys, err := inst(t, e).PeerKeys("empdept", types.EncodeKeyValues(types.Int(10)))
	if err != nil || len(keys) != 1 || !keys[0].Equal(dk) {
		t.Fatalf("PeerKeys = %v, %v", keys, err)
	}
	if _, err := inst(t, e).PeerKeys("ghost", nil); err == nil {
		t.Fatal("unknown join index accepted")
	}
}

func TestAbortAndRecovery(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	d, e := setup(t, env)
	tx := env.Begin()
	d.Insert(tx, types.Record{types.Int(10), types.Str("eng")})
	e.Insert(tx, types.Record{types.Int(1), types.Int(10)})
	tx.Commit()

	tx2 := env.Begin()
	e.Insert(tx2, types.Record{types.Int(2), types.Int(10)})
	tx2.Abort()
	if pairs, _ := inst(t, e).Pairs("empdept"); len(pairs) != 1 {
		t.Fatalf("pairs after abort = %d", len(pairs))
	}

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2, _ := env2.OpenRelationByName("emp")
	pairs, err := inst(t, e2).Pairs("empdept")
	if err != nil || len(pairs) != 1 {
		t.Fatalf("recovered pairs = %d, %v", len(pairs), err)
	}
}

func TestBuildOverExistingRecords(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "dept", deptSchema(), "memory", nil)
	env.CreateRelation(tx, "emp", empSchema(), "memory", nil)
	d, _ := env.OpenRelationByName("dept")
	e, _ := env.OpenRelationByName("emp")
	d.Insert(tx, types.Record{types.Int(10), types.Str("eng")})
	e.Insert(tx, types.Record{types.Int(1), types.Int(10)})
	// Create the join index after the data exists.
	env.CreateAttachment(tx, "emp", "joinindex", core.AttrList{"name": "jj", "on": "dno", "peer": "dept"})
	env.CreateAttachment(tx, "dept", "joinindex", core.AttrList{"name": "jj", "on": "dno", "peer": "emp"})
	tx.Commit()
	e, _ = env.OpenRelationByName("emp")
	pairs, err := inst(t, e).Pairs("jj")
	if err != nil || len(pairs) != 1 {
		t.Fatalf("built pairs = %d, %v", len(pairs), err)
	}
}

func TestValidation(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "emp", empSchema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "emp", "joinindex", core.AttrList{"on": "dno", "peer": "x"}); err == nil {
		t.Fatal("missing name accepted")
	}
	if _, err := env.CreateAttachment(tx, "emp", "joinindex", core.AttrList{"name": "j", "on": "dno"}); err == nil {
		t.Fatal("missing peer accepted")
	}
	tx.Commit()
}
