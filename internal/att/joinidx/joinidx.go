// Package joinidx implements the join-index attachment (Valduriez 1985) —
// the paper's example that "access paths need not be limited to a single
// table". A join index over relations A and B on an equi-join column
// maintains the correspondence between record keys of A and B whose join
// values match.
//
// One logical join index is realised as an attachment instance on each
// participating relation; the two instances share a value → record-key
// structure registered per environment, each maintaining its own side as
// a side effect of its relation's modifications. Matching record-key
// pairs are enumerated directly from the shared structure, so an
// equi-join needs no scan of either relation.
package joinidx

import (
	"fmt"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "joinindex"

const stateKey = "joinidx.shared"

// shared is one logical join index's two-sided structure.
type shared struct {
	mu    sync.Mutex
	sides map[uint32]map[string][]types.Key // relID -> join value -> record keys
}

type stateRegistry struct {
	mu      sync.Mutex
	byIndex map[string]*shared
}

func sharedFor(env *core.Env, indexName string) *shared {
	var reg *stateRegistry
	if v, ok := env.ExtState(stateKey); ok {
		reg = v.(*stateRegistry)
	} else {
		reg = &stateRegistry{byIndex: make(map[string]*shared)}
		env.SetExtState(stateKey, reg)
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	s, ok := reg.byIndex[indexName]
	if !ok {
		s = &shared{sides: make(map[uint32]map[string][]types.Key)}
		reg.byIndex[indexName] = s
	}
	return s
}

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttJoin,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "name", "on", "peer"); err != nil {
				return err
			}
			if _, ok := attrs.Get("name"); !ok {
				return fmt.Errorf("joinidx: a name=<join index> attribute is required (shared by both sides)")
			}
			if _, ok := attrs.Get("peer"); !ok {
				return fmt.Errorf("joinidx: a peer=<relation> attribute is required")
			}
			_, err := attutil.ParseColumns(rd.Schema, attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			fields, err := attutil.ParseColumns(rd.Schema, attrs)
			if err != nil {
				return nil, err
			}
			name, _ := attrs.Get("name")
			peer, _ := attrs.Get("peer")
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:   name,
				Fields: fields,
				Extra:  []byte(peer),
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env, rd: rd}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, newOnly bool) error {
			instAny, err := env.AttachmentInstance(rd, core.AttJoin)
			if err != nil {
				return err
			}
			inst := instAny.(*Instance)
			defs := inst.snapshot()
			if newOnly && len(defs) > 0 {
				defs = defs[len(defs)-1:] // Create appends, so the new def is last
			}
			return core.BuildScan(env, tx, rd, func(key types.Key, rec types.Record) error {
				for _, d := range defs {
					if err := inst.apply(tx, d, core.ModInsert, rec, key); err != nil {
						return err
					}
				}
				return nil
			})
		},
	})
}

type defCfg struct {
	def     attutil.IndexDef
	peerRel string
	state   *shared
}

// Instance services every join-index side on one relation.
type Instance struct {
	env *core.Env
	rd  *core.RelDesc

	mu   sync.Mutex
	defs []defCfg
}

// Reconfigure implements core.Reconfigurer.
func (ix *Instance) Reconfigure(rd *core.RelDesc) error {
	field := rd.AttDesc[core.AttJoin]
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.rd = rd
	ix.defs = nil
	if field == nil {
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	for _, d := range defs {
		ix.defs = append(ix.defs, defCfg{
			def:     d,
			peerRel: string(d.Extra),
			state:   sharedFor(ix.env, d.Name),
		})
	}
	return nil
}

func (ix *Instance) snapshot() []defCfg {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.defs
}

func (s *shared) apply(relID uint32, op core.ModOp, val types.Key, recKey types.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	side := s.sides[relID]
	if side == nil {
		side = make(map[string][]types.Key)
		s.sides[relID] = side
	}
	bucket := side[string(val)]
	if op == core.ModInsert {
		side[string(val)] = append(bucket, recKey.Clone())
		return
	}
	for i, k := range bucket {
		if k.Equal(recKey) {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(side, string(val))
	} else {
		side[string(val)] = bucket
	}
}

func (ix *Instance) apply(tx *txn.Txn, d defCfg, op core.ModOp, rec types.Record, recKey types.Key) error {
	val := types.EncodeKeyFields(rec, d.def.Fields)
	if err := core.LogAttachment(tx, ix.rd, core.AttJoin, core.EntryPayload{
		Op: op, Instance: int(d.def.Seq), EntryKey: val, RecKey: recKey,
	}); err != nil {
		return err
	}
	d.state.apply(ix.rd.RelID, op, val, recKey)
	return nil
}

// OnInsert implements core.AttachmentInstance.
func (ix *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	for _, d := range ix.snapshot() {
		if err := ix.apply(tx, d, core.ModInsert, rec, key); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate implements core.AttachmentInstance.
func (ix *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	keyMoved := !oldKey.Equal(newKey)
	for _, d := range ix.snapshot() {
		if !keyMoved && !attutil.FieldsChanged(d.def.Fields, oldRec, newRec) {
			continue
		}
		if err := ix.apply(tx, d, core.ModDelete, oldRec, oldKey); err != nil {
			return err
		}
		if err := ix.apply(tx, d, core.ModInsert, newRec, newKey); err != nil {
			return err
		}
	}
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (ix *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	for _, d := range ix.snapshot() {
		if err := ix.apply(tx, d, core.ModDelete, oldRec, key); err != nil {
			return err
		}
	}
	return nil
}

// ApplyLogged implements core.AttachmentInstance.
func (ix *Instance) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	op := p.Op
	if undo {
		if op == core.ModInsert {
			op = core.ModDelete
		} else {
			op = core.ModInsert
		}
	}
	for _, d := range ix.snapshot() {
		if int(d.def.Seq) == p.Instance {
			d.state.apply(ix.rd.RelID, op, p.EntryKey, p.RecKey)
			return nil
		}
	}
	return fmt.Errorf("joinidx: log record for unknown instance %d", p.Instance)
}

// Pair is one matched record-key pair of a join index.
type Pair struct {
	Own  types.Key // record key in this instance's relation
	Peer types.Key // record key in the peer relation
}

// Pairs enumerates the matched record-key pairs of the named join index,
// from this relation's perspective. The peer relation's side must have
// been built (its attachment instance opened and maintained).
func (ix *Instance) Pairs(name string) ([]Pair, error) {
	for _, d := range ix.snapshot() {
		if d.def.Name != name {
			continue
		}
		peerRD, ok := ix.env.Cat.ByName(d.peerRel)
		if !ok {
			return nil, fmt.Errorf("joinidx: %w: peer relation %q", core.ErrNotFound, d.peerRel)
		}
		d.state.mu.Lock()
		defer d.state.mu.Unlock()
		own := d.state.sides[ix.rd.RelID]
		peer := d.state.sides[peerRD.RelID]
		var out []Pair
		for val, ownKeys := range own {
			peerKeys := peer[val]
			for _, ok1 := range ownKeys {
				for _, pk := range peerKeys {
					out = append(out, Pair{Own: ok1.Clone(), Peer: pk.Clone()})
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("joinidx: %w: instance %q", core.ErrNotFound, name)
}

// PeerKeys returns the peer-relation record keys whose join value matches
// val (an order-preserving key encoding of the join columns).
func (ix *Instance) PeerKeys(name string, val types.Key) ([]types.Key, error) {
	for _, d := range ix.snapshot() {
		if d.def.Name != name {
			continue
		}
		peerRD, ok := ix.env.Cat.ByName(d.peerRel)
		if !ok {
			return nil, fmt.Errorf("joinidx: %w: peer relation %q", core.ErrNotFound, d.peerRel)
		}
		d.state.mu.Lock()
		defer d.state.mu.Unlock()
		bucket := d.state.sides[peerRD.RelID][string(val)]
		out := make([]types.Key, len(bucket))
		for i, k := range bucket {
			out[i] = k.Clone()
		}
		return out, nil
	}
	return nil, fmt.Errorf("joinidx: %w: instance %q", core.ErrNotFound, name)
}

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
)

// PairKeys enumerates matched (own, peer) record-key pairs of the named
// join index as plain key arrays — the structural interface the query
// planner consumes.
func (ix *Instance) PairKeys(name string) ([][2]types.Key, error) {
	pairs, err := ix.Pairs(name)
	if err != nil {
		return nil, err
	}
	out := make([][2]types.Key, len(pairs))
	for i, p := range pairs {
		out[i] = [2]types.Key{p.Own, p.Peer}
	}
	return out, nil
}
