package attutil

import (
	"testing"

	"dmx/internal/core"
	"dmx/internal/types"
)

func TestDefsRoundTrip(t *testing.T) {
	defs := []IndexDef{
		{Seq: 1, Name: "a", Fields: []int{0, 2}, Unique: true, Extra: []byte{9}},
		{Seq: 7, Name: "b", Fields: nil, Unique: false, Extra: nil},
	}
	enc := EncodeDefs(8, defs)
	next, got, err := DecodeDefs(enc)
	if err != nil || next != 8 || len(got) != 2 {
		t.Fatalf("decode: %v next=%d n=%d", err, next, len(got))
	}
	if got[0].Seq != 1 || got[0].Name != "a" || !got[0].Unique || len(got[0].Fields) != 2 || got[0].Extra[0] != 9 {
		t.Fatalf("def 0 = %+v", got[0])
	}
	if got[1].Seq != 7 || got[1].Name != "b" {
		t.Fatalf("def 1 = %+v", got[1])
	}
	if _, _, err := DecodeDefs([]byte{1, 2}); err == nil {
		t.Error("truncated defs accepted")
	}
}

func TestAddRemoveDef(t *testing.T) {
	field, err := AddDef(nil, IndexDef{Name: "first", Fields: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	field, err = AddDef(field, IndexDef{Name: "second", Fields: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	_, defs, _ := DecodeDefs(field)
	if len(defs) != 2 || defs[0].Seq != 1 || defs[1].Seq != 2 {
		t.Fatalf("defs = %+v", defs)
	}
	// Duplicate names rejected (case-insensitive).
	if _, err := AddDef(field, IndexDef{Name: "FIRST"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// Remove middle; Seq numbering of survivors unchanged.
	field, err = RemoveDef(field, "first")
	if err != nil {
		t.Fatal(err)
	}
	_, defs, _ = DecodeDefs(field)
	if len(defs) != 1 || defs[0].Name != "second" || defs[0].Seq != 2 {
		t.Fatalf("after remove = %+v", defs)
	}
	// Seq counter continues: a new def does not reuse seq 1.
	field, _ = AddDef(field, IndexDef{Name: "third"})
	_, defs, _ = DecodeDefs(field)
	if defs[1].Seq != 3 {
		t.Fatalf("seq reuse: %+v", defs)
	}
	// Removing the last instance keeps the descriptor (empty list): the
	// Seq counter must survive so re-created instances get fresh Seqs.
	field, _ = RemoveDef(field, "second")
	field, err = RemoveDef(field, "third")
	if err != nil || field == nil {
		t.Fatalf("final remove: %v %v", field, err)
	}
	next, defs, _ := DecodeDefs(field)
	if next != 4 || len(defs) != 0 {
		t.Fatalf("after final remove: next=%d defs=%+v", next, defs)
	}
	field, _ = AddDef(field, IndexDef{Name: "fourth"})
	_, defs, _ = DecodeDefs(field)
	if len(defs) != 1 || defs[0].Seq != 4 {
		t.Fatalf("seq reuse after drop-all: %+v", defs)
	}
	if _, err := RemoveDef(EncodeDefs(1, nil), "ghost"); err == nil {
		t.Fatal("removing unknown def should fail")
	}
}

func TestParseColumns(t *testing.T) {
	s := types.MustSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindString},
	)
	fields, err := ParseColumns(s, core.AttrList{"on": "b, a"})
	if err != nil || len(fields) != 2 || fields[0] != 1 || fields[1] != 0 {
		t.Fatalf("ParseColumns = %v, %v", fields, err)
	}
	if _, err := ParseColumns(s, core.AttrList{}); err == nil {
		t.Error("missing on= accepted")
	}
	if _, err := ParseColumns(s, core.AttrList{"on": "zzz"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestInstanceName(t *testing.T) {
	if got := InstanceName(core.AttrList{"name": "custom"}, nil); got != "custom" {
		t.Errorf("explicit name = %q", got)
	}
	if got := InstanceName(nil, nil); got != "ix1" {
		t.Errorf("default name = %q", got)
	}
	field, _ := AddDef(nil, IndexDef{Name: "x"})
	if got := InstanceName(nil, field); got != "ix2" {
		t.Errorf("second default name = %q", got)
	}
}

func TestFieldsChanged(t *testing.T) {
	oldRec := types.Record{types.Int(1), types.Str("a"), types.Float(2)}
	same := types.Record{types.Int(1), types.Str("a"), types.Float(9)}
	if FieldsChanged([]int{0, 1}, oldRec, same) {
		t.Error("unchanged fields reported changed")
	}
	if !FieldsChanged([]int{2}, oldRec, same) {
		t.Error("changed field missed")
	}
	if !FieldsChanged([]int{5}, oldRec, same) {
		t.Error("out-of-range field should be treated as changed")
	}
}
