// Package attutil holds plumbing shared by the attachment extensions:
// the per-instance definition lists stored in attachment descriptor
// fields, and DDL column-list parsing.
//
// A single attachment descriptor field describes every instance of its
// type on the relation; instances carry a stable creation sequence number
// (Seq) so log records and in-memory state survive descriptor changes,
// while the planner-facing instance numbers are dense positions in the
// definition list.
package attutil

import (
	"encoding/binary"
	"fmt"
	"strings"

	"dmx/internal/core"
	"dmx/internal/types"
)

// IndexDef describes one instance of an index-like attachment.
type IndexDef struct {
	Seq    uint32 // stable instance identity
	Name   string
	Fields []int // indexed record fields, in key order
	Unique bool
	Extra  []byte // attachment-specific payload
}

// EncodeDefs serialises a definition list into a descriptor field. The
// leading uint32 is the next unused Seq.
func EncodeDefs(nextSeq uint32, defs []IndexDef) []byte {
	out := binary.BigEndian.AppendUint32(nil, nextSeq)
	out = append(out, byte(len(defs)))
	for _, d := range defs {
		out = binary.BigEndian.AppendUint32(out, d.Seq)
		out = append(out, byte(len(d.Name)))
		out = append(out, d.Name...)
		out = append(out, byte(len(d.Fields)))
		for _, f := range d.Fields {
			out = binary.BigEndian.AppendUint16(out, uint16(f))
		}
		if d.Unique {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = binary.BigEndian.AppendUint16(out, uint16(len(d.Extra)))
		out = append(out, d.Extra...)
	}
	return out
}

// DecodeDefs reverses EncodeDefs.
func DecodeDefs(b []byte) (nextSeq uint32, defs []IndexDef, err error) {
	if len(b) < 5 {
		return 0, nil, fmt.Errorf("attutil: truncated definition list")
	}
	nextSeq = binary.BigEndian.Uint32(b)
	n := int(b[4])
	pos := 5
	for i := 0; i < n; i++ {
		var d IndexDef
		if len(b) < pos+5 {
			return 0, nil, fmt.Errorf("attutil: truncated definition %d", i)
		}
		d.Seq = binary.BigEndian.Uint32(b[pos:])
		nameLen := int(b[pos+4])
		pos += 5
		if len(b) < pos+nameLen+1 {
			return 0, nil, fmt.Errorf("attutil: truncated definition name %d", i)
		}
		d.Name = string(b[pos : pos+nameLen])
		pos += nameLen
		nf := int(b[pos])
		pos++
		if len(b) < pos+2*nf+3 {
			return 0, nil, fmt.Errorf("attutil: truncated definition fields %d", i)
		}
		for j := 0; j < nf; j++ {
			d.Fields = append(d.Fields, int(binary.BigEndian.Uint16(b[pos+2*j:])))
		}
		pos += 2 * nf
		d.Unique = b[pos] == 1
		pos++
		extraLen := int(binary.BigEndian.Uint16(b[pos:]))
		pos += 2
		if len(b) < pos+extraLen {
			return 0, nil, fmt.Errorf("attutil: truncated definition extra %d", i)
		}
		d.Extra = append([]byte(nil), b[pos:pos+extraLen]...)
		pos += extraLen
		defs = append(defs, d)
	}
	return nextSeq, defs, nil
}

// AddDef appends a definition to a (possibly nil) prior descriptor field,
// assigning its Seq, and returns the new field value. Instance names must
// be unique within the type.
func AddDef(prior []byte, d IndexDef) ([]byte, error) {
	nextSeq, defs := uint32(1), []IndexDef(nil)
	if prior != nil {
		var err error
		nextSeq, defs, err = DecodeDefs(prior)
		if err != nil {
			return nil, err
		}
	}
	for _, e := range defs {
		if strings.EqualFold(e.Name, d.Name) {
			return nil, fmt.Errorf("attutil: instance %q already exists", d.Name)
		}
	}
	d.Seq = nextSeq
	defs = append(defs, d)
	return EncodeDefs(nextSeq+1, defs), nil
}

// RemoveDef removes the named definition, returning the new field value.
// The field stays non-nil (an empty list) even when no instances remain:
// nextSeq must survive so a later AddDef cannot reuse a dropped Seq,
// whose in-memory state instances deliberately retain for abort-undo.
func RemoveDef(prior []byte, name string) ([]byte, error) {
	nextSeq, defs, err := DecodeDefs(prior)
	if err != nil {
		return nil, err
	}
	out := defs[:0]
	found := false
	for _, d := range defs {
		if strings.EqualFold(d.Name, name) {
			found = true
			continue
		}
		out = append(out, d)
	}
	if !found {
		return nil, fmt.Errorf("attutil: %w: instance %q", core.ErrNotFound, name)
	}
	return EncodeDefs(nextSeq, out), nil
}

// ParseColumns resolves the comma-separated column list in the attrs key
// "on" against the schema.
func ParseColumns(schema *types.Schema, attrs core.AttrList) ([]int, error) {
	spec, ok := attrs.Get("on")
	if !ok || spec == "" {
		return nil, fmt.Errorf("attutil: an on=col,... attribute is required")
	}
	var fields []int
	for _, name := range strings.Split(spec, ",") {
		i := schema.ColIndex(strings.TrimSpace(name))
		if i < 0 {
			return nil, fmt.Errorf("attutil: column %q not in schema", strings.TrimSpace(name))
		}
		fields = append(fields, i)
	}
	return fields, nil
}

// InstanceName returns the attrs key "name", or a generated default.
func InstanceName(attrs core.AttrList, prior []byte) string {
	if name, ok := attrs.Get("name"); ok && name != "" {
		return name
	}
	n := 0
	if prior != nil {
		if _, defs, err := DecodeDefs(prior); err == nil {
			n = len(defs)
		}
	}
	return fmt.Sprintf("ix%d", n+1)
}

// FieldsChanged reports whether any of the given fields differ between the
// two records — the test the paper says index update procedures should
// perform to skip maintenance when no indexed field changed.
func FieldsChanged(fields []int, oldRec, newRec types.Record) bool {
	for _, f := range fields {
		if f >= len(oldRec) || f >= len(newRec) || !types.Equal(oldRec[f], newRec[f]) {
			return true
		}
	}
	return false
}
