// Package unique implements the uniqueness-constraint attachment: an
// integrity constraint with associated storage (a hash set of key values)
// that vetoes modifications introducing duplicate values in the
// constrained columns.
package unique

import (
	"fmt"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "unique"

// ErrViolation is the veto reason for duplicate values.
var ErrViolation = fmt.Errorf("unique: uniqueness constraint violated")

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttUnique,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "name", "on"); err != nil {
				return err
			}
			_, err := attutil.ParseColumns(rd.Schema, attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			fields, err := attutil.ParseColumns(rd.Schema, attrs)
			if err != nil {
				return nil, err
			}
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:   attutil.InstanceName(attrs, prior),
				Fields: fields,
				Unique: true,
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env, rd: rd, sets: make(map[uint32]map[string]int)}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, newOnly bool) error {
			instAny, err := env.AttachmentInstance(rd, core.AttUnique)
			if err != nil {
				return err
			}
			inst := instAny.(*Instance)
			inst.mu.Lock()
			defs := inst.defs
			inst.mu.Unlock()
			if newOnly && len(defs) > 0 {
				defs = defs[len(defs)-1:] // Create appends, so the new def is last
			}
			return core.BuildScan(env, tx, rd, func(key types.Key, rec types.Record) error {
				for _, d := range defs {
					// add also vetoes the DDL when existing contents
					// already violate the new constraint.
					if err := inst.add(tx, d, rec); err != nil {
						return err
					}
				}
				return nil
			})
		},
	})
}

// Instance services every uniqueness constraint on one relation. Sets are
// reference-counted so a same-transaction delete+insert of the same value
// replays correctly in either undo direction.
type Instance struct {
	env *core.Env
	rd  *core.RelDesc

	mu   sync.Mutex
	defs []attutil.IndexDef
	sets map[uint32]map[string]int // by Seq: key value -> count
}

// Reconfigure implements core.Reconfigurer.
func (u *Instance) Reconfigure(rd *core.RelDesc) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	field := rd.AttDesc[core.AttUnique]
	if field == nil {
		u.defs = nil
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	u.defs = defs
	for _, d := range defs {
		if u.sets[d.Seq] == nil {
			u.sets[d.Seq] = make(map[string]int)
		}
	}
	return nil
}

func (u *Instance) add(tx *txn.Txn, d attutil.IndexDef, rec types.Record) error {
	// NULL values do not participate in uniqueness (SQL convention).
	for _, f := range d.Fields {
		if rec[f].IsNull() {
			return nil
		}
	}
	key := types.EncodeKeyFields(rec, d.Fields)
	u.mu.Lock()
	n := u.sets[d.Seq][string(key)]
	u.mu.Unlock()
	if n > 0 {
		return fmt.Errorf("%w: %q value %v", ErrViolation, d.Name, rec.Project(d.Fields))
	}
	if err := core.LogAttachment(tx, u.rd, core.AttUnique, core.EntryPayload{
		Op: core.ModInsert, Instance: int(d.Seq), EntryKey: key,
	}); err != nil {
		return err
	}
	u.mu.Lock()
	u.sets[d.Seq][string(key)]++
	u.mu.Unlock()
	return nil
}

func (u *Instance) remove(tx *txn.Txn, d attutil.IndexDef, rec types.Record) error {
	for _, f := range d.Fields {
		if rec[f].IsNull() {
			return nil
		}
	}
	key := types.EncodeKeyFields(rec, d.Fields)
	if err := core.LogAttachment(tx, u.rd, core.AttUnique, core.EntryPayload{
		Op: core.ModDelete, Instance: int(d.Seq), EntryKey: key,
	}); err != nil {
		return err
	}
	u.mu.Lock()
	u.applyLocked(d.Seq, core.ModDelete, key)
	u.mu.Unlock()
	return nil
}

func (u *Instance) applyLocked(seq uint32, op core.ModOp, key types.Key) {
	set := u.sets[seq]
	if set == nil {
		set = make(map[string]int)
		u.sets[seq] = set
	}
	if op == core.ModInsert {
		set[string(key)]++
		return
	}
	if set[string(key)] <= 1 {
		delete(set, string(key))
	} else {
		set[string(key)]--
	}
}

// OnInsert implements core.AttachmentInstance.
func (u *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	u.mu.Lock()
	defs := u.defs
	u.mu.Unlock()
	for _, d := range defs {
		if err := u.add(tx, d, rec); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate implements core.AttachmentInstance.
func (u *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	u.mu.Lock()
	defs := u.defs
	u.mu.Unlock()
	for _, d := range defs {
		if !attutil.FieldsChanged(d.Fields, oldRec, newRec) {
			continue
		}
		if err := u.remove(tx, d, oldRec); err != nil {
			return err
		}
		if err := u.add(tx, d, newRec); err != nil {
			return err
		}
	}
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (u *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	u.mu.Lock()
	defs := u.defs
	u.mu.Unlock()
	for _, d := range defs {
		if err := u.remove(tx, d, oldRec); err != nil {
			return err
		}
	}
	return nil
}

// ApplyLogged implements core.AttachmentInstance.
func (u *Instance) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	op := p.Op
	if undo {
		if op == core.ModInsert {
			op = core.ModDelete
		} else {
			op = core.ModInsert
		}
	}
	u.mu.Lock()
	u.applyLocked(uint32(p.Instance), op, p.EntryKey)
	u.mu.Unlock()
	return nil
}

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
)
