package unique_test

import (
	"errors"
	"testing"

	"dmx/internal/att/unique"
	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "email", Kind: types.KindString},
	)
}

func rec(id int64, email string) types.Record {
	return types.Record{types.Int(id), types.Str(email)}
}

func nullEmail(id int64) types.Record {
	return types.Record{types.Int(id), types.Null()}
}

func setup(t *testing.T, env *core.Env) *core.Relation {
	t.Helper()
	tx := env.Begin()
	env.CreateRelation(tx, "users", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "users", "unique", core.AttrList{"name": "umail", "on": "email"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelationByName("users")
	return r
}

func TestDuplicateVetoed(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	if _, err := r.Insert(tx, rec(1, "a@x")); err != nil {
		t.Fatal(err)
	}
	_, err := r.Insert(tx, rec(2, "a@x"))
	var ve *core.VetoError
	if !errors.As(err, &ve) || !errors.Is(err, unique.ErrViolation) {
		t.Fatalf("want unique veto, got %v", err)
	}
	if r.Storage().RecordCount() != 1 {
		t.Fatal("vetoed insert left effects")
	}
	tx.Commit()
}

func TestNullsDoNotParticipate(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	if _, err := r.Insert(tx, nullEmail(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(tx, nullEmail(2)); err != nil {
		t.Fatalf("multiple NULLs should be allowed: %v", err)
	}
	tx.Commit()
}

func TestDeleteFreesValueUpdateMovesIt(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(1, "a@x"))
	r.Delete(tx, k)
	if _, err := r.Insert(tx, rec(2, "a@x")); err != nil {
		t.Fatalf("value should be free after delete: %v", err)
	}
	k3, _ := r.Insert(tx, rec(3, "b@x"))
	if _, err := r.Update(tx, k3, rec(3, "a@x")); err == nil {
		t.Fatal("update into duplicate accepted")
	}
	if _, err := r.Update(tx, k3, rec(3, "c@x")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(tx, rec(4, "b@x")); err != nil {
		t.Fatalf("old value should be free after update away: %v", err)
	}
	tx.Commit()
}

func TestAbortRestoresSet(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	r.Insert(tx, rec(1, "a@x"))
	tx.Commit()

	tx2 := env.Begin()
	k, _ := r.Insert(tx2, rec(2, "b@x"))
	r.Delete(tx2, k)
	tx2.Abort()

	tx3 := env.Begin()
	// After abort, b@x must be free and a@x still taken.
	if _, err := r.Insert(tx3, rec(3, "b@x")); err != nil {
		t.Fatalf("b@x should be free: %v", err)
	}
	if _, err := r.Insert(tx3, rec(4, "a@x")); err == nil {
		t.Fatal("a@x should still be taken")
	}
	tx3.Commit()
}

func TestBuildRejectsExistingDuplicates(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "users", schema(), "memory", nil)
	r, _ := env.OpenRelationByName("users")
	r.Insert(tx, rec(1, "dup@x"))
	r.Insert(tx, rec(2, "dup@x"))
	if _, err := env.CreateAttachment(tx, "users", "unique", core.AttrList{"on": "email"}); err == nil {
		t.Fatal("constraint built over duplicates")
	}
	tx.Abort()
}

func TestRecoveryRestoresSet(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := setup(t, env)
	tx := env.Begin()
	r.Insert(tx, rec(1, "a@x"))
	tx.Commit()

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, _ := env2.OpenRelationByName("users")
	tx2 := env2.Begin()
	if _, err := r2.Insert(tx2, rec(2, "a@x")); err == nil {
		t.Fatal("recovered set lost the taken value")
	}
	if _, err := r2.Insert(tx2, rec(3, "new@x")); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
}
