package rtreeix_test

import (
	"testing"

	"dmx/internal/att/rtreeix"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/rtree"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "shape", Kind: types.KindBytes},
	)
}

func setup(t *testing.T, env *core.Env) *core.Relation {
	t.Helper()
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "parcels", schema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	rd, err := env.CreateAttachment(tx, "parcels", "rtree", core.AttrList{"name": "space", "on": "shape"})
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelation(rd)
	return r
}

func rec(id int64, b expr.Box) types.Record {
	return types.Record{types.Int(id), b.Value()}
}

func TestValidateRequiresBoxColumn(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "t", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "t", "rtree", core.AttrList{"on": "id"}); err == nil {
		t.Fatal("non-BYTES column accepted")
	}
	if _, err := env.CreateAttachment(tx, "t", "rtree", core.AttrList{"on": "id,shape"}); err == nil {
		t.Fatal("two columns accepted")
	}
	tx.Commit()
}

func TestSpatialLookupAndScan(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	r.Insert(tx, rec(1, expr.NewBox(0, 0, 2, 2)))
	r.Insert(tx, rec(2, expr.NewBox(5, 5, 6, 6)))
	r.Insert(tx, rec(3, expr.NewBox(50, 50, 60, 60)))

	// Direct-by-key: query box overlap.
	q := expr.NewBox(1, 1, 7, 7)
	keys, err := r.LookupAccess(tx, core.AttRTree, 0, types.Key(q.Value().B))
	if err != nil || len(keys) != 2 {
		t.Fatalf("overlap lookup = %v, %v", keys, err)
	}
	// Scan with Within mode: only fully-enclosed entries.
	scan, err := r.OpenAccessScan(tx, core.AttRTree, 0, core.ScanOptions{
		Start: types.Key(expr.NewBox(4, 4, 10, 10).Value().B),
		End:   rtreeix.ModeKey(rtree.Within),
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		recKey, boxRec, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		full, _ := r.Fetch(tx, recKey, nil, nil)
		if full[0].AsInt() != 2 {
			t.Fatalf("Within matched id %d", full[0].AsInt())
		}
		if box, err := expr.DecodeBox(boxRec[0]); err != nil || !box.Overlaps(expr.NewBox(5, 5, 6, 6)) {
			t.Fatalf("scan box = %v, %v", box, err)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("Within matched %d", n)
	}
	tx.Commit()
}

func TestMaintenanceOnUpdateDeleteAndNulls(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(1, expr.NewBox(0, 0, 1, 1)))
	// NULL box: not indexed, no error.
	kn, err := r.Insert(tx, types.Record{types.Int(2), types.Null()})
	if err != nil {
		t.Fatal(err)
	}
	// Move the box: old entry out, new in.
	if _, err := r.Update(tx, k, rec(1, expr.NewBox(100, 100, 101, 101))); err != nil {
		t.Fatal(err)
	}
	keys, _ := r.LookupAccess(tx, core.AttRTree, 0, types.Key(expr.NewBox(-1, -1, 2, 2).Value().B))
	if len(keys) != 0 {
		t.Fatal("old position still indexed after move")
	}
	keys, _ = r.LookupAccess(tx, core.AttRTree, 0, types.Key(expr.NewBox(99, 99, 102, 102).Value().B))
	if len(keys) != 1 {
		t.Fatal("new position not indexed after move")
	}
	// Set box to NULL: entry removed.
	if _, err := r.Update(tx, k, types.Record{types.Int(1), types.Null()}); err != nil {
		t.Fatal(err)
	}
	keys, _ = r.LookupAccess(tx, core.AttRTree, 0, types.Key(expr.NewBox(99, 99, 102, 102).Value().B))
	if len(keys) != 0 {
		t.Fatal("NULLed box still indexed")
	}
	if err := r.Delete(tx, kn); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestCostEstimateRecognisesSpatialPredicates(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	for i := 0; i < 100; i++ {
		x := float64(i % 10 * 10)
		y := float64(i / 10 * 10)
		r.Insert(tx, rec(int64(i), expr.NewBox(x, y, x+1, y+1)))
	}
	tx.Commit()

	instAny, _ := env.AttachmentInstance(r.Desc(), core.AttRTree)
	ap := instAny.(core.AccessPath)

	q := expr.NewBox(0, 0, 10, 10)
	est := ap.EstimateCost(core.CostRequest{Conjuncts: []*expr.Expr{
		expr.Encloses(expr.Const(q.Value()), expr.Field(1)),
	}})
	if !est.Usable || est.Selectivity > 0.2 || len(est.Handled) != 1 {
		t.Fatalf("ENCLOSES estimate = %+v", est)
	}
	if est.End == nil || rtree.Mode(est.End[0]) != rtree.Within {
		t.Fatalf("mode = %v", est.End)
	}
	// Non-spatial conjuncts: unusable.
	est2 := ap.EstimateCost(core.CostRequest{Conjuncts: []*expr.Expr{
		expr.Eq(expr.Field(0), expr.Const(types.Int(1))),
	}})
	if est2.Usable {
		t.Fatal("non-spatial conjunct should be unusable")
	}
}

func TestAbortAndRecovery(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := setup(t, env)
	tx := env.Begin()
	r.Insert(tx, rec(1, expr.NewBox(0, 0, 1, 1)))
	tx.Commit()
	tx2 := env.Begin()
	r.Insert(tx2, rec(2, expr.NewBox(0, 0, 1, 1)))
	tx2.Abort()
	tx3 := env.Begin()
	keys, _ := r.LookupAccess(tx3, core.AttRTree, 0, types.Key(expr.NewBox(-1, -1, 2, 2).Value().B))
	if len(keys) != 1 {
		t.Fatalf("entries after abort = %d", len(keys))
	}
	tx3.Commit()

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, _ := env2.OpenRelationByName("parcels")
	tx4 := env2.Begin()
	keys, err := r2.LookupAccess(tx4, core.AttRTree, 0, types.Key(expr.NewBox(-1, -1, 2, 2).Value().B))
	if err != nil || len(keys) != 1 {
		t.Fatalf("recovered entries = %v, %v", keys, err)
	}
	tx4.Commit()
}

func TestScanPositionRestore(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	for i := 0; i < 5; i++ {
		r.Insert(tx, rec(int64(i), expr.NewBox(float64(i), 0, float64(i)+1, 1)))
	}
	scan, _ := r.OpenAccessScan(tx, core.AttRTree, 0, core.ScanOptions{
		Start: types.Key(expr.NewBox(-1, -1, 10, 10).Value().B),
	})
	scan.Next()
	pos := scan.Pos()
	k2a, _, _, _ := scan.Next()
	if err := scan.Restore(pos); err != nil {
		t.Fatal(err)
	}
	k2b, _, _, _ := scan.Next()
	if !k2a.Equal(k2b) {
		t.Fatal("restore did not reposition")
	}
	tx.Commit()
}
