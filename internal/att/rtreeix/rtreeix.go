// Package rtreeix implements the R-tree spatial access path attachment.
// It recognises the ENCLOSES and OVERLAPS spatial predicates in the query
// planner's eligible-predicate list and reports a low cost for them, as
// the paper describes ("the R-tree access path will recognize the
// ENCLOSES predicate and report a low cost").
//
// Access-path keys are 32-byte box encodings; LookupByKey and OpenScan
// interpret ScanOptions.Start as the query box and ScanOptions.End as a
// one-byte search mode.
package rtreeix

import (
	"fmt"
	"math"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/rtree"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "rtree"

// ModeKey encodes a search mode as the scan End key.
func ModeKey(m rtree.Mode) types.Key { return types.Key{byte(m)} }

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttRTree,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "name", "on"); err != nil {
				return err
			}
			fields, err := attutil.ParseColumns(rd.Schema, attrs)
			if err != nil {
				return err
			}
			if len(fields) != 1 || rd.Schema.Cols[fields[0]].Kind != types.KindBytes {
				return fmt.Errorf("rtreeix: exactly one BYTES (box) column is required")
			}
			return nil
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			fields, err := attutil.ParseColumns(rd.Schema, attrs)
			if err != nil {
				return nil, err
			}
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:   attutil.InstanceName(attrs, prior),
				Fields: fields,
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env, rd: rd, trees: make(map[uint32]*rtree.Tree)}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, newOnly bool) error {
			instAny, err := env.AttachmentInstance(rd, core.AttRTree)
			if err != nil {
				return err
			}
			inst := instAny.(*Instance)
			inst.mu.Lock()
			defs := inst.defs
			inst.mu.Unlock()
			if newOnly && len(defs) > 0 {
				defs = defs[len(defs)-1:] // Create appends, so the new def is last
			}
			return core.BuildScan(env, tx, rd, func(key types.Key, rec types.Record) error {
				for _, d := range defs {
					box, ok, err := inst.boxOf(d, rec)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					if err := inst.apply(tx, d, core.ModInsert, box, key); err != nil {
						return err
					}
				}
				return nil
			})
		},
	})
}

// Instance services every R-tree instance on one relation.
type Instance struct {
	env *core.Env
	rd  *core.RelDesc

	mu    sync.Mutex
	defs  []attutil.IndexDef
	trees map[uint32]*rtree.Tree
}

// Reconfigure implements core.Reconfigurer.
func (ix *Instance) Reconfigure(rd *core.RelDesc) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	field := rd.AttDesc[core.AttRTree]
	if field == nil {
		ix.defs = nil
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	ix.defs = defs
	for _, d := range defs {
		if ix.trees[d.Seq] == nil {
			ix.trees[d.Seq] = rtree.New()
		}
	}
	return nil
}

func (ix *Instance) boxOf(d attutil.IndexDef, rec types.Record) (expr.Box, bool, error) {
	v := rec[d.Fields[0]]
	if v.IsNull() {
		return expr.Box{}, false, nil
	}
	b, err := expr.DecodeBox(v)
	if err != nil {
		return expr.Box{}, false, err
	}
	return b, true, nil
}

func (ix *Instance) apply(tx *txn.Txn, d attutil.IndexDef, op core.ModOp, box expr.Box, recKey types.Key) error {
	if err := core.LogAttachment(tx, ix.rd, core.AttRTree, core.EntryPayload{
		Op: op, Instance: int(d.Seq), EntryKey: types.Key(box.Value().B), RecKey: recKey,
	}); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if op == core.ModInsert {
		ix.trees[d.Seq].Insert(box, recKey)
	} else {
		ix.trees[d.Seq].Delete(box, recKey)
	}
	return nil
}

// OnInsert implements core.AttachmentInstance.
func (ix *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	for _, d := range defs {
		box, ok, err := ix.boxOf(d, rec)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := ix.apply(tx, d, core.ModInsert, box, key); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate implements core.AttachmentInstance.
func (ix *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	keyMoved := !oldKey.Equal(newKey)
	for _, d := range defs {
		if !keyMoved && !attutil.FieldsChanged(d.Fields, oldRec, newRec) {
			continue
		}
		oldBox, hadOld, err := ix.boxOf(d, oldRec)
		if err != nil {
			return err
		}
		newBox, hasNew, err := ix.boxOf(d, newRec)
		if err != nil {
			return err
		}
		if hadOld {
			if err := ix.apply(tx, d, core.ModDelete, oldBox, oldKey); err != nil {
				return err
			}
		}
		if hasNew {
			if err := ix.apply(tx, d, core.ModInsert, newBox, newKey); err != nil {
				return err
			}
		}
	}
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (ix *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	for _, d := range defs {
		box, ok, err := ix.boxOf(d, oldRec)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := ix.apply(tx, d, core.ModDelete, box, key); err != nil {
			return err
		}
	}
	return nil
}

// ApplyLogged implements core.AttachmentInstance.
func (ix *Instance) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	box, err := expr.DecodeBox(types.Bytes(p.EntryKey))
	if err != nil {
		return err
	}
	op := p.Op
	if undo {
		if op == core.ModInsert {
			op = core.ModDelete
		} else {
			op = core.ModInsert
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tree := ix.trees[uint32(p.Instance)]
	if tree == nil {
		tree = rtree.New()
		ix.trees[uint32(p.Instance)] = tree
	}
	if op == core.ModInsert {
		tree.Insert(box, p.RecKey)
	} else {
		tree.Delete(box, p.RecKey)
	}
	return nil
}

func (ix *Instance) defAt(instance int) (attutil.IndexDef, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if instance < 0 || instance >= len(ix.defs) {
		return attutil.IndexDef{}, fmt.Errorf("rtreeix: %w: instance %d of %d", core.ErrNotFound, instance, len(ix.defs))
	}
	return ix.defs[instance], nil
}

func (ix *Instance) search(instance int, key types.Key, mode rtree.Mode) ([]rtree.Entry, error) {
	d, err := ix.defAt(instance)
	if err != nil {
		return nil, err
	}
	query, err := expr.DecodeBox(types.Bytes(key))
	if err != nil {
		return nil, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []rtree.Entry
	ix.trees[d.Seq].Search(query, mode, func(e rtree.Entry) bool {
		out = append(out, e)
		return true
	})
	return out, nil
}

// LookupByKey implements core.AccessPath: the key is a 32-byte query box;
// the search mode defaults to Overlaps.
func (ix *Instance) LookupByKey(tx *txn.Txn, instance int, key types.Key) ([]types.Key, error) {
	entries, err := ix.search(instance, key, rtree.Overlaps)
	if err != nil {
		return nil, err
	}
	out := make([]types.Key, len(entries))
	for i, e := range entries {
		out[i] = types.Key(e.Payload).Clone()
	}
	return out, nil
}

// OpenScan implements core.AccessPath: Start carries the query box, End
// the one-byte mode (from ModeKey). Results are snapshotted at open;
// positions are indexes into the snapshot.
func (ix *Instance) OpenScan(tx *txn.Txn, instance int, opts core.ScanOptions) (core.Scan, error) {
	if len(opts.Start) != 32 {
		return nil, fmt.Errorf("rtreeix: scan Start must be a 32-byte query box")
	}
	mode := rtree.Overlaps
	if len(opts.End) == 1 && opts.End[0] >= 1 && opts.End[0] <= 3 {
		mode = rtree.Mode(opts.End[0])
	}
	entries, err := ix.search(instance, opts.Start, mode)
	if err != nil {
		return nil, err
	}
	return &spatialScan{entries: entries}, nil
}

// EstimateCost implements core.AccessPath: recognises spatial conjuncts.
func (ix *Instance) EstimateCost(req core.CostRequest) core.CostEstimate {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	best := core.CostEstimate{Usable: false, IO: math.Inf(1), CPU: math.Inf(1)}
	for i, d := range defs {
		for ci, c := range req.Conjuncts {
			query, mode, ok := MatchSpatialConjunct(c, d.Fields[0])
			if !ok {
				continue
			}
			ix.mu.Lock()
			tree := ix.trees[d.Seq]
			n := float64(tree.Len())
			height := float64(tree.Height())
			sel := 0.1
			if bounds, okb := tree.Bounds(); okb && bounds.Area() > 0 {
				sel = math.Min(1, query.Area()/bounds.Area())
			}
			ix.mu.Unlock()
			est := core.CostEstimate{
				Usable: true, Instance: i, Handled: []int{ci},
				CPU: height + n*sel, IO: n * sel * 0.05,
				Selectivity: sel * smutil.ResidualSelectivity(req, []int{ci}),
				Start:       types.Key(query.Value().B),
				End:         ModeKey(mode),
			}
			if est.Total() < best.Total() || !best.Usable {
				best = est
			}
		}
	}
	return best
}

// MatchSpatialConjunct recognises ENCLOSES/OVERLAPS conjuncts over the
// given box field with a constant query box, returning the query and mode.
func MatchSpatialConjunct(c *expr.Expr, boxField int) (expr.Box, rtree.Mode, bool) {
	if c == nil || len(c.Args) != 2 {
		return expr.Box{}, 0, false
	}
	a, b := c.Args[0], c.Args[1]
	decode := func(e *expr.Expr) (expr.Box, bool) {
		if e.Op != expr.OpConst {
			return expr.Box{}, false
		}
		box, err := expr.DecodeBox(e.Val)
		return box, err == nil
	}
	switch c.Op {
	case expr.OpOverlaps:
		if a.Op == expr.OpField && a.Field == boxField {
			if q, ok := decode(b); ok {
				return q, rtree.Overlaps, true
			}
		}
		if b.Op == expr.OpField && b.Field == boxField {
			if q, ok := decode(a); ok {
				return q, rtree.Overlaps, true
			}
		}
	case expr.OpEncloses:
		// ENCLOSES(query, field): entries within the query box.
		if b.Op == expr.OpField && b.Field == boxField {
			if q, ok := decode(a); ok {
				return q, rtree.Within, true
			}
		}
		// ENCLOSES(field, query): entries containing the query box.
		if a.Op == expr.OpField && a.Field == boxField {
			if q, ok := decode(b); ok {
				return q, rtree.Contains, true
			}
		}
	}
	return expr.Box{}, 0, false
}

// InstanceCount implements core.AccessPath.
func (ix *Instance) InstanceCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.defs)
}

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.AccessPath         = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
)

// spatialScan iterates a snapshot of search results.
type spatialScan struct {
	entries []rtree.Entry
	next    int
	closed  bool
}

// Next implements core.Scan: returns the record key and a one-field
// record holding the entry's box.
func (s *spatialScan) Next() (types.Key, types.Record, bool, error) {
	if s.closed {
		return nil, nil, false, fmt.Errorf("rtreeix: scan is closed")
	}
	if s.next >= len(s.entries) {
		return nil, nil, false, nil
	}
	e := s.entries[s.next]
	s.next++
	return types.Key(e.Payload).Clone(), types.Record{e.Box.Value()}, true, nil
}

// Pos implements core.Scan.
func (s *spatialScan) Pos() core.ScanPos {
	return core.ScanPos{byte(s.next >> 24), byte(s.next >> 16), byte(s.next >> 8), byte(s.next)}
}

// Restore implements core.Scan.
func (s *spatialScan) Restore(pos core.ScanPos) error {
	if len(pos) != 4 {
		return fmt.Errorf("rtreeix: bad scan position")
	}
	s.next = int(pos[0])<<24 | int(pos[1])<<16 | int(pos[2])<<8 | int(pos[3])
	return nil
}

// Close implements core.Scan.
func (s *spatialScan) Close() error {
	s.closed = true
	return nil
}
