package check_test

import (
	"errors"
	"testing"

	"dmx/internal/att/check"
	"dmx/internal/core"
	"dmx/internal/expr"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "salary", Kind: types.KindFloat},
	)
}

func rec(id int64, salary float64) types.Record {
	return types.Record{types.Int(id), types.Float(salary)}
}

func setup(t *testing.T, env *core.Env, preds map[string]*expr.Expr) *core.Relation {
	t.Helper()
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "emp", schema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	for name, p := range preds {
		check.RegisterPredicate("tok:"+name, p)
		if _, err := env.CreateAttachment(tx, "emp", "check",
			core.AttrList{"name": name, "predicate": "tok:" + name}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	r, _ := env.OpenRelationByName("emp")
	return r
}

func TestConstraintVetoesInsertAndUpdate(t *testing.T) {
	env := core.NewEnv(core.Config{})
	positive := expr.Gt(expr.Field(1), expr.Const(types.Float(0)))
	r := setup(t, env, map[string]*expr.Expr{"positive_salary": positive})

	tx := env.Begin()
	k, err := r.Insert(tx, rec(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Insert(tx, rec(2, -5))
	var ve *core.VetoError
	if !errors.As(err, &ve) || !errors.Is(err, check.ErrViolation) {
		t.Fatalf("want constraint veto, got %v", err)
	}
	if r.Storage().RecordCount() != 1 {
		t.Fatal("vetoed insert left effects")
	}
	if _, err := r.Update(tx, k, rec(1, -1)); err == nil {
		t.Fatal("violating update accepted")
	}
	got, _ := r.Fetch(tx, k, nil, nil)
	if got[1].AsFloat() != 100 {
		t.Fatal("record corrupted by vetoed update")
	}
	// Deletes are never constrained.
	if err := r.Delete(tx, k); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestMultipleConstraints(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env, map[string]*expr.Expr{
		"pos": expr.Gt(expr.Field(1), expr.Const(types.Float(0))),
		"cap": expr.Lt(expr.Field(1), expr.Const(types.Float(1000))),
	})
	tx := env.Begin()
	if _, err := r.Insert(tx, rec(1, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(tx, rec(2, 5000)); err == nil {
		t.Fatal("cap constraint did not fire")
	}
	if _, err := r.Insert(tx, rec(3, -1)); err == nil {
		t.Fatal("pos constraint did not fire")
	}
	tx.Commit()
}

func TestAddingConstraintValidatesExistingRecords(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "emp", schema(), "memory", nil)
	r, _ := env.OpenRelationByName("emp")
	r.Insert(tx, rec(1, -50)) // violates the constraint to come
	tx.Commit()

	check.RegisterPredicate("tok:late", expr.Gt(expr.Field(1), expr.Const(types.Float(0))))
	tx2 := env.Begin()
	if _, err := env.CreateAttachment(tx2, "emp", "check",
		core.AttrList{"name": "late", "predicate": "tok:late"}); err == nil {
		t.Fatal("constraint on violating data accepted")
	}
	tx2.Abort()
}

func TestConstraintUsesRegisteredFunctions(t *testing.T) {
	env := core.NewEnv(core.Config{})
	env.Eval.Register("iseven", func(args []types.Value) (types.Value, error) {
		return types.Bool(args[0].AsInt()%2 == 0), nil
	})
	r := setup(t, env, map[string]*expr.Expr{
		"even_id": expr.Call("iseven", expr.Field(0)),
	})
	tx := env.Begin()
	if _, err := r.Insert(tx, rec(2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(tx, rec(3, 1)); err == nil {
		t.Fatal("function constraint did not fire")
	}
	tx.Commit()
}

func TestMissingAndUnknownPredicate(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "emp", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "emp", "check", nil); err == nil {
		t.Fatal("missing predicate accepted")
	}
	if _, err := env.CreateAttachment(tx, "emp", "check",
		core.AttrList{"predicate": "no-such-token"}); err == nil {
		t.Fatal("unknown token accepted")
	}
	tx.Commit()
}

func TestDropConstraint(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env, map[string]*expr.Expr{
		"pos": expr.Gt(expr.Field(1), expr.Const(types.Float(0))),
	})
	tx := env.Begin()
	if _, err := env.DropAttachment(tx, "emp", "check", core.AttrList{"name": "pos"}); err != nil {
		t.Fatal(err)
	}
	r2, _ := env.OpenRelationByName("emp")
	if _, err := r2.Insert(tx, rec(1, -5)); err != nil {
		t.Fatalf("constraint should be gone: %v", err)
	}
	_ = r
	tx.Commit()
}
