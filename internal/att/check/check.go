// Package check implements the single-record integrity constraint
// attachment: a common-service-encoded predicate, stored in the
// attachment descriptor, that is tested whenever records of the relation
// are inserted or updated. A record failing any constraint instance
// vetoes the modification, which the common recovery log then undoes.
package check

import (
	"fmt"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "check"

// ErrViolation is the veto reason for failed constraints.
var ErrViolation = fmt.Errorf("check: integrity constraint violated")

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttCheck,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			return attrs.CheckAllowed(Name, "name", "predicate")
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			pred, err := PredicateFromAttrs(env, attrs)
			if err != nil {
				return nil, err
			}
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:  attutil.InstanceName(attrs, prior),
				Extra: pred.AppendEncode(nil),
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, newOnly bool) error {
			// Adding a constraint to a populated relation validates the
			// existing records; a violation vetoes the DDL. Constraints
			// keep no entry state, so re-validating satisfied constraints
			// at restart rebuild is merely redundant, not harmful.
			_ = newOnly
			instAny, err := env.AttachmentInstance(rd, core.AttCheck)
			if err != nil {
				return err
			}
			inst := instAny.(*Instance)
			return core.BuildScan(env, tx, rd, func(_ types.Key, rec types.Record) error {
				return inst.test(rec)
			})
		},
	})
}

// attrPredicates carries pre-parsed predicates from the DDL layer (which
// parses the textual predicate) to Create through the attribute list.
var attrPredicates sync.Map // key string -> *expr.Expr

// RegisterPredicate stashes a parsed predicate under a token that can be
// passed as the predicate= attribute value. The DDL front end uses this to
// hand structured predicates through the string-valued attribute list.
func RegisterPredicate(token string, e *expr.Expr) {
	attrPredicates.Store(token, e)
}

// PredicateFromAttrs resolves the predicate= attribute: either a token
// registered via RegisterPredicate or a hex-encoded predicate.
func PredicateFromAttrs(env *core.Env, attrs core.AttrList) (*expr.Expr, error) {
	tok, ok := attrs.Get("predicate")
	if !ok || tok == "" {
		return nil, fmt.Errorf("check: a predicate= attribute is required")
	}
	if v, ok := attrPredicates.Load(tok); ok {
		return v.(*expr.Expr), nil
	}
	return nil, fmt.Errorf("check: unknown predicate token %q (register it first)", tok)
}

// constraint is one decoded instance.
type constraint struct {
	name string
	pred *expr.Expr
}

// Instance services every check constraint on one relation.
type Instance struct {
	env *core.Env

	mu          sync.Mutex
	constraints []constraint
}

// Reconfigure implements core.Reconfigurer.
func (c *Instance) Reconfigure(rd *core.RelDesc) error {
	field := rd.AttDesc[core.AttCheck]
	c.mu.Lock()
	defer c.mu.Unlock()
	c.constraints = nil
	if field == nil {
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	for _, d := range defs {
		pred, _, err := expr.Decode(d.Extra)
		if err != nil {
			return fmt.Errorf("check: constraint %q: %w", d.Name, err)
		}
		c.constraints = append(c.constraints, constraint{name: d.Name, pred: pred})
	}
	return nil
}

func (c *Instance) test(rec types.Record) error {
	c.mu.Lock()
	cons := c.constraints
	c.mu.Unlock()
	for _, con := range cons {
		ok, err := c.env.Eval.EvalBool(con.pred, rec, nil)
		if err != nil {
			return fmt.Errorf("check: constraint %q: %w", con.name, err)
		}
		if !ok {
			return fmt.Errorf("%w: %q fails for %v", ErrViolation, con.name, rec)
		}
	}
	return nil
}

// OnInsert implements core.AttachmentInstance.
func (c *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	return c.test(rec)
}

// OnUpdate implements core.AttachmentInstance.
func (c *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	return c.test(newRec)
}

// OnDelete implements core.AttachmentInstance: deletes cannot violate a
// single-record constraint.
func (c *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	return nil
}

// ApplyLogged implements core.AttachmentInstance: constraints have no
// associated storage.
func (c *Instance) ApplyLogged(payload []byte, undo bool) error { return nil }

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
)
