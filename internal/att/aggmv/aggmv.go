// Package aggmv implements the precomputed-aggregate attachment: an
// attachment with associated storage maintaining "precomputed function
// values for data stored in relations" — grouped SUM and COUNT over a
// value column, kept exact under inserts, updates, deletes, vetoes, and
// rollback via logged deltas.
package aggmv

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "aggregate"

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttAggMV,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "name", "group", "value"); err != nil {
				return err
			}
			_, _, err := parseAttrs(rd, attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			groupField, valueField, err := parseAttrs(rd, attrs)
			if err != nil {
				return nil, err
			}
			extra := binary.BigEndian.AppendUint16(nil, uint16(groupField+1)) // +1: 0 means global
			extra = binary.BigEndian.AppendUint16(extra, uint16(valueField))
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:  attutil.InstanceName(attrs, prior),
				Extra: extra,
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env, rd: rd, groups: make(map[uint32]map[string]*agg)}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, newOnly bool) error {
			instAny, err := env.AttachmentInstance(rd, core.AttAggMV)
			if err != nil {
				return err
			}
			inst := instAny.(*Instance)
			inst.mu.Lock()
			defs := inst.defs
			inst.mu.Unlock()
			if newOnly && len(defs) > 0 {
				defs = defs[len(defs)-1:] // Create appends, so the new def is last
			}
			return core.BuildScan(env, tx, rd, func(key types.Key, rec types.Record) error {
				for _, d := range defs {
					if err := inst.applyDelta(tx, d, inst.groupKey(d, rec), rec[d.valueField].AsFloat(), 1); err != nil {
						return err
					}
				}
				return nil
			})
		},
	})
}

func parseAttrs(rd *core.RelDesc, attrs core.AttrList) (groupField, valueField int, err error) {
	groupField = -1
	if g, ok := attrs.Get("group"); ok && g != "" {
		groupField = rd.Schema.ColIndex(g)
		if groupField < 0 {
			return 0, 0, fmt.Errorf("aggmv: group column %q not in schema", g)
		}
	}
	v, ok := attrs.Get("value")
	if !ok {
		return 0, 0, fmt.Errorf("aggmv: a value=<column> attribute is required")
	}
	valueField = rd.Schema.ColIndex(v)
	if valueField < 0 {
		return 0, 0, fmt.Errorf("aggmv: value column %q not in schema", v)
	}
	k := rd.Schema.Cols[valueField].Kind
	if k != types.KindInt && k != types.KindFloat {
		return 0, 0, fmt.Errorf("aggmv: value column %q is not numeric", v)
	}
	return groupField, valueField, nil
}

type defCfg struct {
	seq        uint32
	name       string
	groupField int // -1 = global aggregate
	valueField int
}

type agg struct {
	sum   float64
	count int64
}

// Instance services every aggregate instance on one relation.
type Instance struct {
	env *core.Env
	rd  *core.RelDesc

	mu     sync.Mutex
	defs   []defCfg
	groups map[uint32]map[string]*agg // by Seq: group key -> aggregate
}

// Reconfigure implements core.Reconfigurer.
func (a *Instance) Reconfigure(rd *core.RelDesc) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	field := rd.AttDesc[core.AttAggMV]
	a.defs = nil
	if field == nil {
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	for _, d := range defs {
		if len(d.Extra) < 4 {
			return fmt.Errorf("aggmv: corrupt descriptor for %q", d.Name)
		}
		a.defs = append(a.defs, defCfg{
			seq:        d.Seq,
			name:       d.Name,
			groupField: int(binary.BigEndian.Uint16(d.Extra)) - 1,
			valueField: int(binary.BigEndian.Uint16(d.Extra[2:])),
		})
		if a.groups[d.Seq] == nil {
			a.groups[d.Seq] = make(map[string]*agg)
		}
	}
	return nil
}

func (a *Instance) groupKey(d defCfg, rec types.Record) types.Key {
	if d.groupField < 0 {
		return types.Key{}
	}
	return types.EncodeKeyValues(rec[d.groupField])
}

// delta payload: EntryKey = group key, RecKey = 8-byte sum delta bits +
// 8-byte count delta.
func encodeDelta(sum float64, count int64) types.Key {
	out := make(types.Key, 16)
	binary.BigEndian.PutUint64(out, math.Float64bits(sum))
	binary.BigEndian.PutUint64(out[8:], uint64(count))
	return out
}

func decodeDelta(b types.Key) (float64, int64, error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("aggmv: bad delta payload length %d", len(b))
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)),
		int64(binary.BigEndian.Uint64(b[8:])), nil
}

func (a *Instance) applyDelta(tx *txn.Txn, d defCfg, group types.Key, sum float64, count int64) error {
	if err := core.LogAttachment(tx, a.rd, core.AttAggMV, core.EntryPayload{
		Op: core.ModUpdate, Instance: int(d.seq), EntryKey: group, RecKey: encodeDelta(sum, count),
	}); err != nil {
		return err
	}
	a.mu.Lock()
	a.applyLocked(d.seq, group, sum, count)
	a.mu.Unlock()
	return nil
}

func (a *Instance) applyLocked(seq uint32, group types.Key, sum float64, count int64) {
	gm := a.groups[seq]
	if gm == nil {
		gm = make(map[string]*agg)
		a.groups[seq] = gm
	}
	g := gm[string(group)]
	if g == nil {
		g = &agg{}
		gm[string(group)] = g
	}
	g.sum += sum
	g.count += count
	if g.count == 0 && g.sum == 0 {
		delete(gm, string(group))
	}
}

// OnInsert implements core.AttachmentInstance.
func (a *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	a.mu.Lock()
	defs := a.defs
	a.mu.Unlock()
	for _, d := range defs {
		if err := a.applyDelta(tx, d, a.groupKey(d, rec), rec[d.valueField].AsFloat(), 1); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate implements core.AttachmentInstance.
func (a *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	a.mu.Lock()
	defs := a.defs
	a.mu.Unlock()
	for _, d := range defs {
		oldGroup, newGroup := a.groupKey(d, oldRec), a.groupKey(d, newRec)
		oldVal, newVal := oldRec[d.valueField].AsFloat(), newRec[d.valueField].AsFloat()
		if oldGroup.Equal(newGroup) {
			if oldVal == newVal {
				continue
			}
			if err := a.applyDelta(tx, d, newGroup, newVal-oldVal, 0); err != nil {
				return err
			}
			continue
		}
		if err := a.applyDelta(tx, d, oldGroup, -oldVal, -1); err != nil {
			return err
		}
		if err := a.applyDelta(tx, d, newGroup, newVal, 1); err != nil {
			return err
		}
	}
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (a *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	a.mu.Lock()
	defs := a.defs
	a.mu.Unlock()
	for _, d := range defs {
		if err := a.applyDelta(tx, d, a.groupKey(d, oldRec), -oldRec[d.valueField].AsFloat(), -1); err != nil {
			return err
		}
	}
	return nil
}

// ApplyLogged implements core.AttachmentInstance.
func (a *Instance) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	sum, count, err := decodeDelta(p.RecKey)
	if err != nil {
		return err
	}
	if undo {
		sum, count = -sum, -count
	}
	a.mu.Lock()
	a.applyLocked(uint32(p.Instance), p.EntryKey, sum, count)
	a.mu.Unlock()
	return nil
}

// Lookup returns the precomputed SUM and COUNT for the named instance and
// group value (pass types.Null() for a global aggregate).
func (a *Instance) Lookup(name string, group types.Value) (sum float64, count int64, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, d := range a.defs {
		if d.name != name {
			continue
		}
		key := types.Key{}
		if d.groupField >= 0 {
			key = types.EncodeKeyValues(group)
		}
		if g := a.groups[d.seq][string(key)]; g != nil {
			return g.sum, g.count, nil
		}
		return 0, 0, nil
	}
	return 0, 0, fmt.Errorf("aggmv: %w: instance %q", core.ErrNotFound, name)
}

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
)
