package aggmv_test

import (
	"testing"

	"dmx/internal/att/aggmv"
	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "dept", Kind: types.KindString, NotNull: true},
		types.Column{Name: "salary", Kind: types.KindFloat},
	)
}

func rec(dept string, salary float64) types.Record {
	return types.Record{types.Str(dept), types.Float(salary)}
}

func setup(t *testing.T, env *core.Env) *core.Relation {
	t.Helper()
	tx := env.Begin()
	env.CreateRelation(tx, "emp", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "emp", "aggregate",
		core.AttrList{"name": "paybydept", "group": "dept", "value": "salary"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ := env.OpenRelationByName("emp")
	return r
}

func lookup(t *testing.T, r *core.Relation, name string, group types.Value) (float64, int64) {
	t.Helper()
	instAny, err := r.Env().AttachmentInstance(r.Desc(), core.AttAggMV)
	if err != nil {
		t.Fatal(err)
	}
	sum, count, err := instAny.(*aggmv.Instance).Lookup(name, group)
	if err != nil {
		t.Fatal(err)
	}
	return sum, count
}

func TestGroupedSumCountMaintained(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	k1, _ := r.Insert(tx, rec("eng", 100))
	r.Insert(tx, rec("eng", 200))
	r.Insert(tx, rec("ops", 50))

	if sum, count := lookup(t, r, "paybydept", types.Str("eng")); sum != 300 || count != 2 {
		t.Fatalf("eng = %v/%v", sum, count)
	}
	if sum, count := lookup(t, r, "paybydept", types.Str("ops")); sum != 50 || count != 1 {
		t.Fatalf("ops = %v/%v", sum, count)
	}
	// Value update adjusts the sum.
	r.Update(tx, k1, rec("eng", 150))
	if sum, _ := lookup(t, r, "paybydept", types.Str("eng")); sum != 350 {
		t.Fatalf("eng after raise = %v", sum)
	}
	// Group move shifts between groups.
	r.Update(tx, k1, rec("ops", 150))
	if sum, count := lookup(t, r, "paybydept", types.Str("eng")); sum != 200 || count != 1 {
		t.Fatalf("eng after move = %v/%v", sum, count)
	}
	if sum, count := lookup(t, r, "paybydept", types.Str("ops")); sum != 200 || count != 2 {
		t.Fatalf("ops after move = %v/%v", sum, count)
	}
	// Delete removes the contribution.
	r.Delete(tx, k1)
	if sum, count := lookup(t, r, "paybydept", types.Str("ops")); sum != 50 || count != 1 {
		t.Fatalf("ops after delete = %v/%v", sum, count)
	}
	// Unknown group reads as zero.
	if sum, count := lookup(t, r, "paybydept", types.Str("ghost")); sum != 0 || count != 0 {
		t.Fatal("ghost group nonzero")
	}
	tx.Commit()
}

func TestGlobalAggregate(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "emp", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "emp", "aggregate",
		core.AttrList{"name": "total", "value": "salary"}); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelationByName("emp")
	r.Insert(tx, rec("a", 1))
	r.Insert(tx, rec("b", 2))
	tx.Commit()
	if sum, count := lookup(t, r, "total", types.Null()); sum != 3 || count != 2 {
		t.Fatalf("global = %v/%v", sum, count)
	}
}

func TestAbortRestoresAggregates(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	r.Insert(tx, rec("eng", 100))
	tx.Commit()
	tx2 := env.Begin()
	r.Insert(tx2, rec("eng", 900))
	tx2.Abort()
	if sum, count := lookup(t, r, "paybydept", types.Str("eng")); sum != 100 || count != 1 {
		t.Fatalf("after abort = %v/%v", sum, count)
	}
}

func TestBuildAndRecovery(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	tx := env.Begin()
	env.CreateRelation(tx, "emp", schema(), "memory", nil)
	r, _ := env.OpenRelationByName("emp")
	r.Insert(tx, rec("eng", 10))
	r.Insert(tx, rec("eng", 20))
	// Build over existing records.
	if _, err := env.CreateAttachment(tx, "emp", "aggregate",
		core.AttrList{"name": "paybydept", "group": "dept", "value": "salary"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r, _ = env.OpenRelationByName("emp")
	if sum, count := lookup(t, r, "paybydept", types.Str("eng")); sum != 30 || count != 2 {
		t.Fatalf("built = %v/%v", sum, count)
	}

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, _ := env2.OpenRelationByName("emp")
	if sum, count := lookup(t, r2, "paybydept", types.Str("eng")); sum != 30 || count != 2 {
		t.Fatalf("recovered = %v/%v", sum, count)
	}
}

func TestValidation(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "emp", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "emp", "aggregate", nil); err == nil {
		t.Fatal("missing value accepted")
	}
	if _, err := env.CreateAttachment(tx, "emp", "aggregate",
		core.AttrList{"value": "dept"}); err == nil {
		t.Fatal("non-numeric value column accepted")
	}
	if _, err := env.CreateAttachment(tx, "emp", "aggregate",
		core.AttrList{"value": "salary", "group": "zzz"}); err == nil {
		t.Fatal("unknown group column accepted")
	}
	tx.Commit()
}
