// Package btreeix implements the B-tree index attachment — the paper's
// worked example of a procedurally attached access path.
//
// After a record is inserted into a relation with B-tree indexes, the
// attached insert procedure forms an index key by projecting fields from
// the record and inserts (index key, record key) into each index. On
// update, the old record and key determine the entry to delete and the
// new ones the entry to insert — unless no indexed field changed, which
// the procedure detects and skips. Entries are stored as composite
// indexKey‖recordKey tree keys, giving non-unique index semantics;
// unique indexes veto duplicate-key modifications.
package btreeix

import (
	"fmt"
	"math"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/btree"
	"dmx/internal/core"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "btree"

// ErrUniqueViolation is the veto reason for duplicate keys in a unique index.
var ErrUniqueViolation = fmt.Errorf("btreeix: unique index violation")

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttBTree,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "name", "on", "unique"); err != nil {
				return err
			}
			_, err := attutil.ParseColumns(rd.Schema, attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			fields, err := attutil.ParseColumns(rd.Schema, attrs)
			if err != nil {
				return nil, err
			}
			uniq, _ := attrs.Get("unique")
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:   attutil.InstanceName(attrs, prior),
				Fields: fields,
				Unique: uniq == "true",
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil // drop all instances
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env, rd: rd, trees: make(map[uint32]*btree.Tree)}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
		Build: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, newOnly bool) error {
			return buildFromRelation(env, tx, rd, newOnly)
		},
	})
}

// buildFromRelation populates indexes from the relation's existing records
// (entries are logged, so an aborted CREATE INDEX unwinds them).
func buildFromRelation(env *core.Env, tx *txn.Txn, rd *core.RelDesc, newOnly bool) error {
	instAny, err := env.AttachmentInstance(rd, core.AttBTree)
	if err != nil {
		return err
	}
	inst := instAny.(*Instance)
	inst.mu.Lock()
	defs := inst.defs
	inst.mu.Unlock()
	if newOnly && len(defs) > 0 {
		defs = defs[len(defs)-1:] // Create appends, so the new def is last
	}
	return core.BuildScan(env, tx, rd, func(key types.Key, rec types.Record) error {
		for _, d := range defs {
			// Creating a unique index over duplicate-carrying contents
			// vetoes the DDL.
			if err := inst.checkUnique(d, rec, key); err != nil {
				return err
			}
			if err := inst.apply(tx, d, core.ModInsert, rec, key); err != nil {
				return err
			}
		}
		return nil
	})
}

// Instance services every B-tree index instance on one relation.
type Instance struct {
	env *core.Env
	rd  *core.RelDesc

	mu    sync.Mutex
	defs  []attutil.IndexDef
	trees map[uint32]*btree.Tree // by Seq; retained across reconfigure
}

// Reconfigure implements core.Reconfigurer.
func (ix *Instance) Reconfigure(rd *core.RelDesc) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	field := rd.AttDesc[core.AttBTree]
	if field == nil {
		ix.defs = nil
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	ix.defs = defs
	for _, d := range defs {
		if ix.trees[d.Seq] == nil {
			ix.trees[d.Seq] = btree.New()
		}
	}
	return nil
}

// entryKey composes the stored composite key for a record in one index.
func entryKey(d attutil.IndexDef, rec types.Record, recKey types.Key) types.Key {
	ik := types.EncodeKeyFields(rec, d.Fields)
	return append(ik, recKey...)
}

// indexKey is the index key alone (the composite's prefix).
func indexKey(d attutil.IndexDef, rec types.Record) types.Key {
	return types.EncodeKeyFields(rec, d.Fields)
}

func (ix *Instance) apply(tx *txn.Txn, d attutil.IndexDef, op core.ModOp, rec types.Record, recKey types.Key) error {
	ek := entryKey(d, rec, recKey)
	if err := core.LogAttachment(tx, ix.rd, core.AttBTree, core.EntryPayload{
		Op: op, Instance: int(d.Seq), EntryKey: ek, RecKey: recKey,
	}); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tree := ix.trees[d.Seq]
	if op == core.ModInsert {
		tree.Set(ek, recKey)
	} else {
		tree.Delete(ek)
	}
	return nil
}

// checkUnique vetoes when the index key already maps to a different record.
func (ix *Instance) checkUnique(d attutil.IndexDef, rec types.Record, recKey types.Key) error {
	if !d.Unique {
		return nil
	}
	ik := indexKey(d, rec)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	violated := false
	ix.trees[d.Seq].AscendRange(ik, smutil.PrefixSuccessor(ik), func(k, v []byte) bool {
		if !types.Key(v).Equal(recKey) {
			violated = true
		}
		return !violated
	})
	if violated {
		return fmt.Errorf("%w: index %q key %v", ErrUniqueViolation, d.Name, rec.Project(d.Fields))
	}
	return nil
}

// OnInsert implements core.AttachmentInstance.
func (ix *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	for _, d := range defs {
		if err := ix.checkUnique(d, rec, key); err != nil {
			return err
		}
		if err := ix.apply(tx, d, core.ModInsert, rec, key); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate implements core.AttachmentInstance, skipping indexes none of
// whose fields changed (when the record key is also unchanged).
func (ix *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	keyMoved := !oldKey.Equal(newKey)
	for _, d := range defs {
		if !keyMoved && !attutil.FieldsChanged(d.Fields, oldRec, newRec) {
			continue
		}
		if err := ix.checkUnique(d, newRec, oldKey); err != nil {
			return err
		}
		if err := ix.apply(tx, d, core.ModDelete, oldRec, oldKey); err != nil {
			return err
		}
		if err := ix.apply(tx, d, core.ModInsert, newRec, newKey); err != nil {
			return err
		}
	}
	return nil
}

// OnDelete implements core.AttachmentInstance.
func (ix *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	for _, d := range defs {
		if err := ix.apply(tx, d, core.ModDelete, oldRec, key); err != nil {
			return err
		}
	}
	return nil
}

// ApplyLogged implements core.AttachmentInstance.
func (ix *Instance) ApplyLogged(payload []byte, undo bool) error {
	p, err := core.DecodeEntry(payload)
	if err != nil {
		return err
	}
	op := p.Op
	if undo {
		if op == core.ModInsert {
			op = core.ModDelete
		} else {
			op = core.ModInsert
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tree := ix.trees[uint32(p.Instance)]
	if tree == nil {
		tree = btree.New()
		ix.trees[uint32(p.Instance)] = tree
	}
	if op == core.ModInsert {
		tree.Set(p.EntryKey, p.RecKey)
	} else {
		tree.Delete(p.EntryKey)
	}
	return nil
}

// defAt returns the dense-numbered instance definition.
func (ix *Instance) defAt(instance int) (attutil.IndexDef, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if instance < 0 || instance >= len(ix.defs) {
		return attutil.IndexDef{}, fmt.Errorf("btreeix: %w: instance %d of %d", core.ErrNotFound, instance, len(ix.defs))
	}
	return ix.defs[instance], nil
}

// LookupByKey implements core.AccessPath: record keys whose index key has
// the given (possibly partial) key as prefix.
func (ix *Instance) LookupByKey(tx *txn.Txn, instance int, key types.Key) ([]types.Key, error) {
	d, err := ix.defAt(instance)
	if err != nil {
		return nil, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var out []types.Key
	ix.trees[d.Seq].AscendRange(key, smutil.PrefixSuccessor(key), func(k, v []byte) bool {
		out = append(out, types.Key(v).Clone())
		return true
	})
	return out, nil
}

// OpenScan implements core.AccessPath: key-sequential access in index-key
// order returning record keys plus the stored index key fields.
func (ix *Instance) OpenScan(tx *txn.Txn, instance int, opts core.ScanOptions) (core.Scan, error) {
	d, err := ix.defAt(instance)
	if err != nil {
		return nil, err
	}
	emit := func(k, v []byte) (types.Key, types.Record, bool, error) {
		keyVals, err := types.DecodeKeyValues(types.Key(k[:len(k)-len(v)]))
		if err != nil {
			return nil, nil, false, err
		}
		return types.Key(v).Clone(), types.Record(keyVals), true, nil
	}
	ix.mu.Lock()
	tree := ix.trees[d.Seq]
	ix.mu.Unlock()
	return smutil.NewTreeScan(&ix.mu, tree, opts.Start, opts.End, emit), nil
}

// EstimateCost implements core.AccessPath: the best instance for the
// planner's eligible predicates ("a B-tree access path will return a low
// cost if there is a predicate on the key of the B-tree").
func (ix *Instance) EstimateCost(req core.CostRequest) core.CostEstimate {
	ix.mu.Lock()
	defs := ix.defs
	ix.mu.Unlock()
	best := core.CostEstimate{Usable: false, IO: math.Inf(1), CPU: math.Inf(1)}
	for i, d := range defs {
		start, end, handled, point, depth := smutil.KeyRange(d.Fields, req.Conjuncts)
		ordered := len(req.OrderBy) > 0 && smutil.OrderSatisfiedBy(d.Fields, req.OrderBy)
		if depth == 0 && !ordered {
			continue
		}
		ix.mu.Lock()
		n := float64(ix.trees[d.Seq].Len())
		height := float64(ix.trees[d.Seq].Height())
		ix.mu.Unlock()
		if depth == 0 {
			// No usable predicate: a full key-sequential pass through the
			// index, valuable only because it delivers the order. Every
			// entry costs a direct record fetch, so the pass is several
			// times a plain scan — worthwhile only when the caller stops
			// early (the planner scales by the row limit).
			est := core.CostEstimate{
				Usable: true, Instance: i, Ordered: true,
				CPU: n * 3, IO: n * 0.1, Selectivity: 1,
			}
			if est.Total() < best.Total() || !best.Usable {
				best = est
			}
			continue
		}
		est := core.CostEstimate{
			Usable: true, Instance: i, Handled: handled, Start: start, End: end,
			Ordered: ordered,
		}
		if point && d.Unique {
			est.CPU = height + 1
			est.Selectivity = 1 / math.Max(n, 1)
		} else {
			frac := smutil.HandledSelectivity(req, handled)
			est.CPU = height + n*frac
			est.Selectivity = frac
		}
		// Each qualifying entry costs a direct record fetch.
		est.IO = est.Selectivity * math.Max(n, 1) * 0.1
		if est.Total() < best.Total() || !best.Usable {
			best = est
		}
	}
	return best
}

// InstanceCount implements core.AccessPath.
func (ix *Instance) InstanceCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.defs)
}

// EntryCount returns the number of entries in the dense-numbered instance
// (for tests and the experiment harness).
func (ix *Instance) EntryCount(instance int) int {
	d, err := ix.defAt(instance)
	if err != nil {
		return -1
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.trees[d.Seq].Len()
}

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.AccessPath         = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
)
