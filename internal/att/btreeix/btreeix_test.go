package btreeix_test

import (
	"errors"
	"fmt"
	"testing"

	"dmx/internal/att/btreeix"
	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/types"
	"dmx/internal/wal"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "dept", Kind: types.KindString},
		types.Column{Name: "salary", Kind: types.KindFloat},
	)
}

func setup(t *testing.T, env *core.Env, indexAttrs ...core.AttrList) *core.Relation {
	t.Helper()
	tx := env.Begin()
	rd, err := env.CreateRelation(tx, "emp", schema(), "memory", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, attrs := range indexAttrs {
		if rd, err = env.CreateAttachment(tx, "emp", "btree", attrs); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelation(rd)
	return r
}

func rec(id int64, dept string, salary float64) types.Record {
	return types.Record{types.Int(id), types.Str(dept), types.Float(salary)}
}

func inst(t *testing.T, r *core.Relation) *btreeix.Instance {
	t.Helper()
	a, err := r.Env().AttachmentInstance(r.Desc(), core.AttBTree)
	if err != nil {
		t.Fatal(err)
	}
	return a.(*btreeix.Instance)
}

func TestMaintainedOnModifications(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env, core.AttrList{"name": "bydept", "on": "dept"})
	tx := env.Begin()
	k1, _ := r.Insert(tx, rec(1, "eng", 100))
	r.Insert(tx, rec(2, "eng", 200))
	r.Insert(tx, rec(3, "ops", 300))
	ix := inst(t, r)
	if ix.EntryCount(0) != 3 {
		t.Fatalf("entries = %d", ix.EntryCount(0))
	}
	// Lookup by index key prefix.
	keys, err := ix.LookupByKey(tx, 0, types.EncodeKeyValues(types.Str("eng")))
	if err != nil || len(keys) != 2 {
		t.Fatalf("lookup eng = %v, %v", keys, err)
	}
	// Update moving dept moves the entry.
	r.Update(tx, k1, rec(1, "ops", 100))
	keys, _ = ix.LookupByKey(tx, 0, types.EncodeKeyValues(types.Str("ops")))
	if len(keys) != 2 {
		t.Fatalf("lookup ops after move = %d", len(keys))
	}
	// Delete removes the entry.
	r.Delete(tx, k1)
	keys, _ = ix.LookupByKey(tx, 0, types.EncodeKeyValues(types.Str("ops")))
	if len(keys) != 1 {
		t.Fatalf("lookup ops after delete = %d", len(keys))
	}
	tx.Commit()
}

func TestUpdateSkipsUnchangedIndexedFields(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env, core.AttrList{"name": "bydept", "on": "dept"})
	tx := env.Begin()
	k, _ := r.Insert(tx, rec(1, "eng", 100))
	logBefore := env.Log.Len()
	// Salary-only update: the B-tree update procedure must detect that no
	// indexed field changed and skip index maintenance.
	if _, err := r.Update(tx, k, rec(1, "eng", 999)); err != nil {
		t.Fatal(err)
	}
	attRecords := 0
	for _, lr := range env.Log.Records()[logBefore:] {
		if lr.Kind == wal.RecUpdate && lr.Owner.Class == wal.OwnerAttachment {
			attRecords++
		}
	}
	if attRecords != 0 {
		t.Fatalf("index logged %d records for a non-indexed update", attRecords)
	}
	tx.Commit()
}

func TestMultipleInstances(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env,
		core.AttrList{"name": "bydept", "on": "dept"},
		core.AttrList{"name": "bysalary", "on": "salary"},
	)
	tx := env.Begin()
	r.Insert(tx, rec(1, "eng", 100))
	r.Insert(tx, rec(2, "ops", 50))
	ix := inst(t, r)
	if ix.InstanceCount() != 2 {
		t.Fatalf("instances = %d", ix.InstanceCount())
	}
	if ix.EntryCount(0) != 2 || ix.EntryCount(1) != 2 {
		t.Fatalf("entries = %d, %d", ix.EntryCount(0), ix.EntryCount(1))
	}
	// Access via "B-tree number 1" (the salary index).
	keys, err := ix.LookupByKey(tx, 1, types.EncodeKeyValues(types.Float(50)))
	if err != nil || len(keys) != 1 {
		t.Fatalf("salary lookup = %v, %v", keys, err)
	}
	tx.Commit()
}

func TestUniqueIndexVetoes(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env, core.AttrList{"name": "uid", "on": "id", "unique": "true"})
	tx := env.Begin()
	r.Insert(tx, rec(1, "eng", 100))
	_, err := r.Insert(tx, rec(1, "ops", 200))
	var ve *core.VetoError
	if !errors.As(err, &ve) || !errors.Is(err, btreeix.ErrUniqueViolation) {
		t.Fatalf("want unique veto, got %v", err)
	}
	// The vetoed insert must be fully undone (storage and index).
	if r.Storage().RecordCount() != 1 || inst(t, r).EntryCount(0) != 1 {
		t.Fatal("partial effects left after unique veto")
	}
	tx.Commit()
}

func TestBuildIndexesExistingRecords(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	tx := env.Begin()
	for i := 0; i < 20; i++ {
		r.Insert(tx, rec(int64(i), "eng", float64(i)))
	}
	if _, err := env.CreateAttachment(tx, "emp", "btree", core.AttrList{"name": "late", "on": "id"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	r2, _ := env.OpenRelationByName("emp")
	if got := inst(t, r2).EntryCount(0); got != 20 {
		t.Fatalf("built entries = %d", got)
	}
}

func TestCreateIndexAbortUnwindsBuild(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env)
	load := env.Begin()
	for i := 0; i < 10; i++ {
		r.Insert(load, rec(int64(i), "eng", 1))
	}
	load.Commit()

	tx := env.Begin()
	if _, err := env.CreateAttachment(tx, "emp", "btree", core.AttrList{"name": "doomed", "on": "id"}); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	cur, _ := env.Cat.ByName("emp")
	if cur.HasAttachment(core.AttBTree) {
		t.Fatal("descriptor should be restored after abort")
	}
}

func TestIndexScanOrderAndKeys(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env, core.AttrList{"name": "bysalary", "on": "salary"})
	tx := env.Begin()
	for _, s := range []float64{30, 10, 20} {
		r.Insert(tx, rec(int64(s), "eng", s))
	}
	scan, err := r.OpenAccessScan(tx, core.AttBTree, 0, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var salaries []float64
	for {
		recKey, ixFields, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		// The access path returns the record key; fetch the record
		// directly via the storage method (access path zero).
		full, err := r.Fetch(tx, recKey, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !types.Equal(ixFields[0], full[2]) {
			t.Fatalf("index key field %v != record field %v", ixFields[0], full[2])
		}
		salaries = append(salaries, full[2].AsFloat())
	}
	if len(salaries) != 3 || salaries[0] != 10 || salaries[1] != 20 || salaries[2] != 30 {
		t.Fatalf("index order = %v", salaries)
	}
	tx.Commit()
}

func TestAbortRestoresIndex(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env, core.AttrList{"name": "bydept", "on": "dept"})
	tx := env.Begin()
	r.Insert(tx, rec(1, "eng", 1))
	tx.Commit()

	tx2 := env.Begin()
	r.Insert(tx2, rec(2, "eng", 2))
	tx2.Abort()
	if got := inst(t, r).EntryCount(0); got != 1 {
		t.Fatalf("entries after abort = %d", got)
	}
}

func TestRecoveryRebuildsIndex(t *testing.T) {
	log := wal.New()
	env := core.NewEnv(core.Config{Log: log})
	r := setup(t, env, core.AttrList{"name": "bydept", "on": "dept"})
	tx := env.Begin()
	for i := 0; i < 15; i++ {
		r.Insert(tx, rec(int64(i), fmt.Sprintf("d%d", i%3), 1))
	}
	tx.Commit()

	env2 := core.NewEnv(core.Config{Log: log})
	if err := env2.Recover(); err != nil {
		t.Fatal(err)
	}
	r2, err := env2.OpenRelationByName("emp")
	if err != nil {
		t.Fatal(err)
	}
	tx2 := env2.Begin()
	ix := inst(t, r2)
	if ix.EntryCount(0) != 15 {
		t.Fatalf("recovered entries = %d", ix.EntryCount(0))
	}
	keys, err := ix.LookupByKey(tx2, 0, types.EncodeKeyValues(types.Str("d1")))
	if err != nil || len(keys) != 5 {
		t.Fatalf("recovered lookup = %v, %v", keys, err)
	}
	tx2.Commit()
}

func TestLookupViaRelationAPI(t *testing.T) {
	env := core.NewEnv(core.Config{})
	r := setup(t, env, core.AttrList{"name": "bydept", "on": "dept"})
	tx := env.Begin()
	r.Insert(tx, rec(1, "eng", 1))
	keys, err := r.LookupAccess(tx, core.AttBTree, 0, types.EncodeKeyValues(types.Str("eng")))
	if err != nil || len(keys) != 1 {
		t.Fatalf("LookupAccess = %v, %v", keys, err)
	}
	if _, err := r.LookupAccess(tx, core.AttBTree, 9, nil); err == nil {
		t.Fatal("bad instance accepted")
	}
	tx.Commit()
}
