// Package trigger implements the trigger attachment: attached procedures
// that fire as side effects of relation modifications and may take
// arbitrary actions inside the database (cascading modifications through
// the same generic interfaces) or outside it, and may veto the
// modification by returning an error.
//
// Trigger bodies are Go functions registered per environment under a
// name; the attachment descriptor stores the name and the event mask.
// (The 1987 system would link trigger procedures in "at the factory";
// registration at startup is the Go equivalent.)
package trigger

import (
	"fmt"
	"strings"
	"sync"

	"dmx/internal/att/attutil"
	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Name is the DDL name of the attachment type.
const Name = "trigger"

// Event says which modification fired the trigger.
type Event uint8

// Trigger events.
const (
	OnInsert Event = 1 << iota
	OnUpdate
	OnDelete
)

// Func is a trigger body. key/oldRec/newRec follow the attached-procedure
// convention (old on update+delete, new on update+insert). Returning an
// error vetoes the triggering modification.
type Func func(env *core.Env, tx *txn.Txn, ev Event, rel *core.RelDesc, key types.Key, oldRec, newRec types.Record) error

const registryKey = "trigger.registry"

type registry struct {
	mu    sync.Mutex
	funcs map[string]Func
}

func funcs(env *core.Env) *registry {
	if v, ok := env.ExtState(registryKey); ok {
		return v.(*registry)
	}
	r := &registry{funcs: make(map[string]Func)}
	env.SetExtState(registryKey, r)
	return r
}

// Register installs a trigger body under name in env.
func Register(env *core.Env, name string, fn Func) {
	r := funcs(env)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[strings.ToLower(name)] = fn
}

func lookup(env *core.Env, name string) (Func, error) {
	r := funcs(env)
	r.mu.Lock()
	defer r.mu.Unlock()
	fn, ok := r.funcs[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("trigger: no registered function %q", name)
	}
	return fn, nil
}

func parseEvents(attrs core.AttrList) (Event, error) {
	spec, ok := attrs.Get("events")
	if !ok || spec == "" {
		return OnInsert | OnUpdate | OnDelete, nil
	}
	var mask Event
	for _, e := range strings.Split(spec, ",") {
		switch strings.ToLower(strings.TrimSpace(e)) {
		case "insert":
			mask |= OnInsert
		case "update":
			mask |= OnUpdate
		case "delete":
			mask |= OnDelete
		default:
			return 0, fmt.Errorf("trigger: unknown event %q", e)
		}
	}
	return mask, nil
}

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID:   core.AttTrigger,
		Name: Name,
		ValidateAttrs: func(env *core.Env, rd *core.RelDesc, attrs core.AttrList) error {
			if err := attrs.CheckAllowed(Name, "name", "call", "events"); err != nil {
				return err
			}
			call, ok := attrs.Get("call")
			if !ok {
				return fmt.Errorf("trigger: a call=<function> attribute is required")
			}
			if _, err := lookup(env, call); err != nil {
				return err
			}
			_, err := parseEvents(attrs)
			return err
		},
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			call, ok := attrs.Get("call")
			if !ok {
				return nil, fmt.Errorf("trigger: a call=<function> attribute is required")
			}
			if _, err := lookup(env, call); err != nil {
				return nil, err
			}
			mask, err := parseEvents(attrs)
			if err != nil {
				return nil, err
			}
			extra := append([]byte{byte(mask)}, call...)
			return attutil.AddDef(prior, attutil.IndexDef{
				Name:  attutil.InstanceName(attrs, prior),
				Extra: extra,
			})
		},
		Drop: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			name, ok := attrs.Get("name")
			if !ok {
				return nil, nil
			}
			return attutil.RemoveDef(prior, name)
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			inst := &Instance{env: env, rd: rd}
			if err := inst.Reconfigure(rd); err != nil {
				return nil, err
			}
			return inst, nil
		},
	})
}

type instanceDef struct {
	name string
	mask Event
	call string
}

// Instance services every trigger instance on one relation.
type Instance struct {
	env *core.Env
	rd  *core.RelDesc

	mu   sync.Mutex
	defs []instanceDef
}

// Reconfigure implements core.Reconfigurer.
func (in *Instance) Reconfigure(rd *core.RelDesc) error {
	field := rd.AttDesc[core.AttTrigger]
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rd = rd
	in.defs = nil
	if field == nil {
		return nil
	}
	_, defs, err := attutil.DecodeDefs(field)
	if err != nil {
		return err
	}
	for _, d := range defs {
		if len(d.Extra) < 1 {
			return fmt.Errorf("trigger: corrupt descriptor for %q", d.Name)
		}
		in.defs = append(in.defs, instanceDef{
			name: d.Name,
			mask: Event(d.Extra[0]),
			call: string(d.Extra[1:]),
		})
	}
	return nil
}

func (in *Instance) fire(tx *txn.Txn, ev Event, key types.Key, oldRec, newRec types.Record) error {
	in.mu.Lock()
	defs := in.defs
	rd := in.rd
	in.mu.Unlock()
	for _, d := range defs {
		if d.mask&ev == 0 {
			continue
		}
		fn, err := lookup(in.env, d.call)
		if err != nil {
			return err
		}
		if err := fn(in.env, tx, ev, rd, key, oldRec, newRec); err != nil {
			return fmt.Errorf("trigger %q: %w", d.name, err)
		}
	}
	return nil
}

// OnInsert implements core.AttachmentInstance.
func (in *Instance) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	return in.fire(tx, OnInsert, key, nil, rec)
}

// OnUpdate implements core.AttachmentInstance.
func (in *Instance) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	return in.fire(tx, OnUpdate, newKey, oldRec, newRec)
}

// OnDelete implements core.AttachmentInstance.
func (in *Instance) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error {
	return in.fire(tx, OnDelete, key, oldRec, nil)
}

// ApplyLogged implements core.AttachmentInstance: triggers have no
// associated storage (their database actions are logged by the relations
// they modify, so cascaded effects unwind with the transaction).
func (in *Instance) ApplyLogged(payload []byte, undo bool) error { return nil }

var (
	_ core.AttachmentInstance = (*Instance)(nil)
	_ core.Reconfigurer       = (*Instance)(nil)
)
