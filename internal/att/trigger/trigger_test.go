package trigger_test

import (
	"errors"
	"fmt"
	"testing"

	"dmx/internal/att/trigger"
	"dmx/internal/core"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/txn"
	"dmx/internal/types"
)

func schema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "val", Kind: types.KindString},
	)
}

func rec(id int64, val string) types.Record {
	return types.Record{types.Int(id), types.Str(val)}
}

func TestTriggerFiresPerEventMask(t *testing.T) {
	env := core.NewEnv(core.Config{})
	var events []string
	trigger.Register(env, "audit", func(_ *core.Env, _ *txn.Txn, ev trigger.Event, rd *core.RelDesc, key types.Key, oldRec, newRec types.Record) error {
		switch ev {
		case trigger.OnInsert:
			if newRec == nil || oldRec != nil {
				t.Error("insert trigger args wrong")
			}
			events = append(events, "ins")
		case trigger.OnUpdate:
			if newRec == nil || oldRec == nil {
				t.Error("update trigger args wrong")
			}
			events = append(events, "upd")
		case trigger.OnDelete:
			if newRec != nil || oldRec == nil {
				t.Error("delete trigger args wrong")
			}
			events = append(events, "del")
		}
		return nil
	})
	tx := env.Begin()
	env.CreateRelation(tx, "t", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "t", "trigger",
		core.AttrList{"name": "aud", "call": "audit", "events": "insert,delete"}); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelationByName("t")
	k, _ := r.Insert(tx, rec(1, "a"))
	r.Update(tx, k, rec(1, "b")) // not in mask
	r.Delete(tx, k)
	tx.Commit()
	if len(events) != 2 || events[0] != "ins" || events[1] != "del" {
		t.Fatalf("events = %v", events)
	}
}

func TestTriggerVetoUndoesModification(t *testing.T) {
	env := core.NewEnv(core.Config{})
	boom := errors.New("forbidden")
	trigger.Register(env, "guard", func(_ *core.Env, _ *txn.Txn, _ trigger.Event, _ *core.RelDesc, _ types.Key, _, newRec types.Record) error {
		if newRec != nil && newRec[1].S == "bad" {
			return boom
		}
		return nil
	})
	tx := env.Begin()
	env.CreateRelation(tx, "t", schema(), "memory", nil)
	env.CreateAttachment(tx, "t", "trigger", core.AttrList{"call": "guard"})
	r, _ := env.OpenRelationByName("t")
	if _, err := r.Insert(tx, rec(1, "good")); err != nil {
		t.Fatal(err)
	}
	_, err := r.Insert(tx, rec(2, "bad"))
	var ve *core.VetoError
	if !errors.As(err, &ve) || !errors.Is(err, boom) {
		t.Fatalf("want trigger veto, got %v", err)
	}
	if r.Storage().RecordCount() != 1 {
		t.Fatal("vetoed insert left effects")
	}
	tx.Commit()
}

func TestTriggerCascadesIntoOtherRelation(t *testing.T) {
	// The paper: attachments "may access or modify other data in the
	// database by calling the appropriate storage method or attachment
	// routines — in this manner, modifications may cascade".
	env := core.NewEnv(core.Config{})
	trigger.Register(env, "audit_log", func(env *core.Env, tx *txn.Txn, ev trigger.Event, rd *core.RelDesc, key types.Key, oldRec, newRec types.Record) error {
		audit, err := env.OpenRelationByName("audit")
		if err != nil {
			return err
		}
		_, err = audit.Insert(tx, rec(newRec[0].AsInt(), fmt.Sprintf("%s@%s", "insert", rd.Name)))
		return err
	})
	tx := env.Begin()
	env.CreateRelation(tx, "audit", schema(), "memory", nil)
	env.CreateRelation(tx, "t", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "t", "trigger",
		core.AttrList{"call": "audit_log", "events": "insert"}); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelationByName("t")
	r.Insert(tx, rec(7, "x"))
	tx.Commit()

	audit, _ := env.OpenRelationByName("audit")
	if audit.Storage().RecordCount() != 1 {
		t.Fatal("cascaded insert missing")
	}

	// And an abort unwinds the cascaded modification too.
	tx2 := env.Begin()
	r.Insert(tx2, rec(8, "y"))
	tx2.Abort()
	if audit.Storage().RecordCount() != 1 {
		t.Fatal("cascaded insert not rolled back")
	}
}

func TestUnknownFunctionAndEventRejected(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	env.CreateRelation(tx, "t", schema(), "memory", nil)
	if _, err := env.CreateAttachment(tx, "t", "trigger", core.AttrList{"call": "nope"}); err == nil {
		t.Fatal("unknown function accepted")
	}
	trigger.Register(env, "fn", func(*core.Env, *txn.Txn, trigger.Event, *core.RelDesc, types.Key, types.Record, types.Record) error {
		return nil
	})
	if _, err := env.CreateAttachment(tx, "t", "trigger",
		core.AttrList{"call": "fn", "events": "explode"}); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := env.CreateAttachment(tx, "t", "trigger", nil); err == nil {
		t.Fatal("missing call accepted")
	}
	tx.Commit()
}
