// Package btree implements an in-memory B-tree keyed by byte slices.
//
// It is the ordered-container substrate shared by the main-memory and
// B-tree-organised storage methods and by the index attachments. Keys are
// unique and compared byte-wise; non-unique index semantics are obtained
// by composing entry keys as indexKey‖recordKey, which preserves ordering
// under the order-preserving field encoding. The tree is not safe for
// concurrent use; callers serialise with their own latch.
package btree

import "bytes"

// degree is the minimum branching factor: nodes hold between degree-1 and
// 2*degree-1 keys (except the root).
const degree = 32

type item struct {
	key []byte
	val []byte
}

type node struct {
	items    []item
	children []*node // nil for leaves
}

func (n *node) leaf() bool { return n.children == nil }

// find returns the position of key in n.items and whether it is present.
func (n *node) find(key []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.items[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && bytes.Equal(n.items[lo].key, key) {
		return lo, true
	}
	return lo, false
}

// Tree is a B-tree map from byte-slice keys to byte-slice values.
// The zero value is an empty tree ready to use.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for n != nil {
		i, ok := n.find(key)
		if ok {
			return n.items[i].val, true
		}
		if n.leaf() {
			return nil, false
		}
		n = n.children[i]
	}
	return nil, false
}

// Set stores val under key (both copied), returning the previous value and
// whether one was replaced.
func (t *Tree) Set(key, val []byte) ([]byte, bool) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), val...)
	if t.root == nil {
		t.root = &node{items: []item{{k, v}}}
		t.size = 1
		return nil, false
	}
	if len(t.root.items) == 2*degree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	prev, replaced := t.root.insert(k, v)
	if !replaced {
		t.size++
	}
	return prev, replaced
}

// splitChild splits the full child at index i of n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	up := child.items[mid]
	right := &node{items: append([]item(nil), child.items[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]
	n.items = append(n.items, item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = up
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insert inserts into a non-full subtree.
func (n *node) insert(key, val []byte) ([]byte, bool) {
	i, ok := n.find(key)
	if ok {
		prev := n.items[i].val
		n.items[i].val = val
		return prev, true
	}
	if n.leaf() {
		n.items = append(n.items, item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = item{key, val}
		return nil, false
	}
	if len(n.children[i].items) == 2*degree-1 {
		n.splitChild(i)
		if c := bytes.Compare(key, n.items[i].key); c > 0 {
			i++
		} else if c == 0 {
			prev := n.items[i].val
			n.items[i].val = val
			return prev, true
		}
	}
	return n.children[i].insert(key, val)
}

// Delete removes key, returning its value and whether it was present.
func (t *Tree) Delete(key []byte) ([]byte, bool) {
	if t.root == nil {
		return nil, false
	}
	val, ok := t.root.delete(key)
	if len(t.root.items) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	if ok {
		t.size--
	}
	return val, ok
}

func (n *node) delete(key []byte) ([]byte, bool) {
	i, found := n.find(key)
	if n.leaf() {
		if !found {
			return nil, false
		}
		val := n.items[i].val
		n.items = append(n.items[:i], n.items[i+1:]...)
		return val, true
	}
	if found {
		val := n.items[i].val
		// Replace with predecessor (grown child), then delete it there.
		if len(n.children[i].items) >= degree {
			pred := n.children[i].max()
			n.items[i] = pred
			n.children[i].delete(pred.key)
			return val, true
		}
		if len(n.children[i+1].items) >= degree {
			succ := n.children[i+1].min()
			n.items[i] = succ
			n.children[i+1].delete(succ.key)
			return val, true
		}
		n.merge(i)
		return n.children[i].delete(key)
	}
	// Descend, growing the child first if minimal.
	if len(n.children[i].items) < degree {
		i = n.grow(i)
	}
	return n.children[i].delete(key)
}

func (n *node) min() item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *node) max() item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// grow ensures child i has at least degree items, borrowing from a sibling
// or merging; returns the (possibly shifted) child index to descend into.
func (n *node) grow(i int) int {
	if i > 0 && len(n.children[i-1].items) >= degree {
		// Borrow from left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, item{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !child.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= degree {
		// Borrow from right sibling.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !child.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	if i == len(n.children)-1 {
		i--
	}
	n.merge(i)
	return i
}

// merge folds child i+1 and the separator into child i.
func (n *node) merge(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend visits entries with key >= from (nil = minimum) in ascending
// order until fn returns false.
func (t *Tree) Ascend(from []byte, fn func(key, val []byte) bool) {
	if t.root != nil {
		t.root.ascend(from, fn)
	}
}

func (n *node) ascend(from []byte, fn func(k, v []byte) bool) bool {
	i := 0
	if from != nil {
		i, _ = n.find(from)
	}
	for ; i < len(n.items); i++ {
		if !n.leaf() && !n.children[i].ascend(from, fn) {
			return false
		}
		if from != nil && bytes.Compare(n.items[i].key, from) < 0 {
			continue
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
		from = nil // descendants right of here are all >= from
	}
	if !n.leaf() {
		return n.children[len(n.items)].ascend(from, fn)
	}
	return true
}

// AscendRange visits entries with ge <= key < lt (nil bounds are open)
// in ascending order until fn returns false.
func (t *Tree) AscendRange(ge, lt []byte, fn func(key, val []byte) bool) {
	t.Ascend(ge, func(k, v []byte) bool {
		if lt != nil && bytes.Compare(k, lt) >= 0 {
			return false
		}
		return fn(k, v)
	})
}

// Min returns the smallest key and its value.
func (t *Tree) Min() ([]byte, []byte, bool) {
	if t.root == nil || t.size == 0 {
		return nil, nil, false
	}
	it := t.root.min()
	return it.key, it.val, true
}

// Max returns the largest key and its value.
func (t *Tree) Max() ([]byte, []byte, bool) {
	if t.root == nil || t.size == 0 {
		return nil, nil, false
	}
	it := t.root.max()
	return it.key, it.val, true
}

// Height returns the tree height (0 for empty); for tests and cost models.
func (t *Tree) Height() int {
	h, n := 0, t.root
	for n != nil {
		h++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return h
}
