package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func k(i int) []byte { return []byte(fmt.Sprintf("%08d", i)) }

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree")
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("Get on empty")
	}
	if _, ok := tr.Delete([]byte("x")); ok {
		t.Fatal("Delete on empty")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty")
	}
	n := 0
	tr.Ascend(nil, func(_, _ []byte) bool { n++; return true })
	if n != 0 {
		t.Fatal("Ascend on empty")
	}
}

func TestSetGetReplace(t *testing.T) {
	tr := New()
	if _, replaced := tr.Set(k(1), []byte("a")); replaced {
		t.Fatal("fresh Set reported replace")
	}
	prev, replaced := tr.Set(k(1), []byte("b"))
	if !replaced || string(prev) != "a" {
		t.Fatalf("replace: %q %v", prev, replaced)
	}
	if tr.Len() != 1 {
		t.Fatal("Len after replace")
	}
	v, ok := tr.Get(k(1))
	if !ok || string(v) != "b" {
		t.Fatal("Get after replace")
	}
}

func TestSetCopiesInputs(t *testing.T) {
	tr := New()
	key := []byte("key")
	val := []byte("val")
	tr.Set(key, val)
	key[0] = 'X'
	val[0] = 'X'
	if _, ok := tr.Get([]byte("key")); !ok {
		t.Fatal("tree aliased caller's key")
	}
	v, _ := tr.Get([]byte("key"))
	if string(v) != "val" {
		t.Fatal("tree aliased caller's value")
	}
}

func TestLargeSequentialAndReverse(t *testing.T) {
	for name, order := range map[string]func(i, n int) int{
		"ascending":  func(i, n int) int { return i },
		"descending": func(i, n int) int { return n - 1 - i },
	} {
		t.Run(name, func(t *testing.T) {
			tr := New()
			const n = 5000
			for i := 0; i < n; i++ {
				tr.Set(k(order(i, n)), k(order(i, n)))
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			// Full ascent must be sorted and complete.
			var prev []byte
			count := 0
			tr.Ascend(nil, func(key, val []byte) bool {
				if prev != nil && bytes.Compare(prev, key) >= 0 {
					t.Fatalf("out of order: %s then %s", prev, key)
				}
				if !bytes.Equal(key, val) {
					t.Fatal("value mismatch")
				}
				prev = append(prev[:0], key...)
				count++
				return true
			})
			if count != n {
				t.Fatalf("visited %d of %d", count, n)
			}
		})
	}
}

func TestDeleteEverySecondThenAll(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Set(k(i), k(i))
	}
	for i := 0; i < n; i += 2 {
		v, ok := tr.Delete(k(i))
		if !ok || !bytes.Equal(v, k(i)) {
			t.Fatalf("delete %d: %v", i, ok)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(k(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	for i := 1; i < n; i += 2 {
		if _, ok := tr.Delete(k(i)); !ok {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("tree not empty: len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestAscendFrom(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 2 { // even keys only
		tr.Set(k(i), nil)
	}
	// From an existing key: inclusive.
	var got []string
	tr.Ascend(k(10), func(key, _ []byte) bool {
		got = append(got, string(key))
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != string(k(10)) || got[1] != string(k(12)) || got[2] != string(k(14)) {
		t.Fatalf("Ascend from existing = %v", got)
	}
	// From a missing key: next greater.
	got = nil
	tr.Ascend(k(11), func(key, _ []byte) bool {
		got = append(got, string(key))
		return false
	})
	if len(got) != 1 || got[0] != string(k(12)) {
		t.Fatalf("Ascend from missing = %v", got)
	}
	// From past the end: nothing.
	got = nil
	tr.Ascend(k(99), func(key, _ []byte) bool {
		got = append(got, string(key))
		return true
	})
	if len(got) != 0 {
		t.Fatalf("Ascend past end = %v", got)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Set(k(i), nil)
	}
	var got []string
	tr.AscendRange(k(10), k(13), func(key, _ []byte) bool {
		got = append(got, string(key))
		return true
	})
	if len(got) != 3 || got[0] != string(k(10)) || got[2] != string(k(12)) {
		t.Fatalf("range = %v", got)
	}
	// Open bounds.
	n := 0
	tr.AscendRange(nil, nil, func(_, _ []byte) bool { n++; return true })
	if n != 50 {
		t.Fatalf("open range visited %d", n)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	perm := rand.New(rand.NewSource(3)).Perm(500)
	for _, i := range perm {
		tr.Set(k(i), nil)
	}
	minK, _, _ := tr.Min()
	maxK, _, _ := tr.Max()
	if !bytes.Equal(minK, k(0)) || !bytes.Equal(maxK, k(499)) {
		t.Fatalf("min=%s max=%s", minK, maxK)
	}
}

// TestAgainstReferenceModel drives random operations against a map+sort
// reference, checking Get/Len after every batch and full iteration order.
func TestAgainstReferenceModel(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr := New()
	ref := map[string]string{}
	for step := 0; step < 20000; step++ {
		key := fmt.Sprintf("%06d", r.Intn(3000))
		switch r.Intn(3) {
		case 0, 1:
			val := fmt.Sprintf("v%d", step)
			_, replaced := tr.Set([]byte(key), []byte(val))
			_, existed := ref[key]
			if replaced != existed {
				t.Fatalf("step %d: replace=%v existed=%v", step, replaced, existed)
			}
			ref[key] = val
		case 2:
			_, ok := tr.Delete([]byte(key))
			_, existed := ref[key]
			if ok != existed {
				t.Fatalf("step %d: delete=%v existed=%v", step, ok, existed)
			}
			delete(ref, key)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: len %d vs %d", step, tr.Len(), len(ref))
		}
	}
	// Final: iteration order matches sorted reference.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	tr.Ascend(nil, func(key, val []byte) bool {
		if string(key) != keys[i] || string(val) != ref[keys[i]] {
			t.Fatalf("iteration mismatch at %d: %s vs %s", i, key, keys[i])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("visited %d of %d", i, len(keys))
	}
	// Random range queries against the reference.
	for q := 0; q < 100; q++ {
		lo := fmt.Sprintf("%06d", r.Intn(3000))
		hi := fmt.Sprintf("%06d", r.Intn(3000))
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for _, key := range keys {
			if key >= lo && key < hi {
				want++
			}
		}
		got := 0
		tr.AscendRange([]byte(lo), []byte(hi), func(_, _ []byte) bool { got++; return true })
		if got != want {
			t.Fatalf("range [%s,%s): got %d want %d", lo, hi, got, want)
		}
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := New()
	if tr.Height() != 0 {
		t.Fatal("empty height")
	}
	tr.Set(k(0), nil)
	if tr.Height() != 1 {
		t.Fatal("single height")
	}
	for i := 1; i < 10000; i++ {
		tr.Set(k(i), nil)
	}
	if h := tr.Height(); h < 2 || h > 4 {
		t.Fatalf("height of 10k = %d, want 2..4 for degree 32", h)
	}
}

func BenchmarkSet(b *testing.B) {
	tr := New()
	for i := 0; b.Loop(); i++ {
		tr.Set(k(i), nil)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Set(k(i), nil)
	}
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		tr.Get(k(i % 100000))
	}
}

// TestQuickSetGetInvariant drives testing/quick over arbitrary key sets:
// after inserting all keys, every key must be retrievable and iteration
// must be sorted and duplicate-free.
func TestQuickSetGetInvariant(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr := New()
		unique := map[string]bool{}
		for _, k := range keys {
			tr.Set(k, k)
			unique[string(k)] = true
		}
		if tr.Len() != len(unique) {
			return false
		}
		for k := range unique {
			v, ok := tr.Get([]byte(k))
			if !ok || string(v) != k {
				return false
			}
		}
		var prev []byte
		first := true
		sorted := true
		tr.Ascend(nil, func(k, _ []byte) bool {
			if !first && bytes.Compare(prev, k) >= 0 {
				sorted = false
				return false
			}
			prev = append(prev[:0], k...)
			first = false
			return true
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeleteInvariant checks Len/Get consistency under interleaved
// deletes of an arbitrary subset.
func TestQuickDeleteInvariant(t *testing.T) {
	f := func(keys [][]byte, drop []bool) bool {
		tr := New()
		live := map[string]bool{}
		for _, k := range keys {
			tr.Set(k, nil)
			live[string(k)] = true
		}
		for i, k := range keys {
			if i < len(drop) && drop[i] {
				_, ok := tr.Delete(k)
				if ok != live[string(k)] {
					return false
				}
				delete(live, string(k))
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		for _, k := range keys {
			if _, ok := tr.Get(k); ok != live[string(k)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
