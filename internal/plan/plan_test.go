package plan_test

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	_ "dmx/internal/att/btreeix"
	_ "dmx/internal/att/hashidx"
	_ "dmx/internal/att/joinidx"
	_ "dmx/internal/att/rtreeix"
	_ "dmx/internal/att/stats"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/plan"
	_ "dmx/internal/sm/btreesm"
	_ "dmx/internal/sm/heap"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/trace"
	"dmx/internal/types"
)

func empSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "eno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "dno", Kind: types.KindInt},
		types.Column{Name: "salary", Kind: types.KindFloat},
	)
}

func deptSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "dno", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "name", Kind: types.KindString},
	)
}

// loadEmp creates emp with n records: eno=i, dno=i%10, salary=i.
func loadEmp(t *testing.T, env *core.Env, sm string, attrs core.AttrList, n int) *core.Relation {
	t.Helper()
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "emp", empSchema(), sm, attrs); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelationByName("emp")
	for i := 0; i < n; i++ {
		if _, err := r.Insert(tx, types.Record{
			types.Int(int64(i)), types.Int(int64(i % 10)), types.Float(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return r
}

func runQuery(t *testing.T, env *core.Env, q plan.Query) ([]types.Record, *plan.Bound) {
	t.Helper()
	p := plan.New(env)
	b, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	tx := env.Begin()
	defer tx.Commit()
	rows, err := plan.Collect(b.Execute(tx))
	if err != nil {
		t.Fatal(err)
	}
	return rows, b
}

func TestScanPlanWhenNoIndex(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 100)
	q := plan.Query{Table: "emp", Filter: expr.Eq(expr.Field(0), expr.Const(types.Int(7)))}
	rows, b := runQuery(t, env, q)
	if !strings.HasPrefix(b.Explain(), "scan(") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 7 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPlannerPicksBTreeIndexForEquality(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 1000)
	tx := env.Begin()
	if _, err := env.CreateAttachment(tx, "emp", "btree",
		core.AttrList{"name": "byeno", "on": "eno", "unique": "true"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	q := plan.Query{Table: "emp", Filter: expr.Eq(expr.Field(0), expr.Const(types.Int(42)))}
	rows, b := runQuery(t, env, q)
	if !strings.Contains(b.Explain(), "btree") {
		t.Fatalf("expected btree access, got %s", b.Explain())
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 42 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIndexRangeScanWithResidual(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 100)
	tx := env.Begin()
	env.CreateAttachment(tx, "emp", "btree", core.AttrList{"name": "byeno", "on": "eno"})
	tx.Commit()

	// Range on eno (handled by index) AND predicate on dno (residual).
	q := plan.Query{Table: "emp", Filter: expr.And(
		expr.Lt(expr.Field(0), expr.Const(types.Int(50))),
		expr.Eq(expr.Field(1), expr.Const(types.Int(3))),
	)}
	rows, b := runQuery(t, env, q)
	if !strings.Contains(b.Explain(), "btree") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 5 { // eno in {3,13,23,33,43}
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r[0].AsInt() >= 50 || r[1].AsInt() != 3 {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestBTreeStorageMethodActsAsAccessPath(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "btree", core.AttrList{"key": "eno"}, 500)
	q := plan.Query{Table: "emp", Filter: expr.Eq(expr.Field(0), expr.Const(types.Int(123)))}
	rows, b := runQuery(t, env, q)
	if !strings.HasPrefix(b.Explain(), "scan(emp via btree") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 123 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashIndexChosenForEquality(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "heap", nil, 500)
	tx := env.Begin()
	env.CreateAttachment(tx, "emp", "hash", core.AttrList{"name": "hdno", "on": "dno"})
	tx.Commit()

	q := plan.Query{Table: "emp", Filter: expr.Eq(expr.Field(1), expr.Const(types.Int(4)))}
	rows, b := runQuery(t, env, q)
	if !strings.Contains(b.Explain(), "hash") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 50 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestProjectionApplied(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 10)
	q := plan.Query{Table: "emp", Fields: []int{2, 0}}
	rows, _ := runQuery(t, env, q)
	if len(rows) != 10 || len(rows[0]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].K != types.KindFloat || rows[0][1].K != types.KindInt {
		t.Fatalf("projection order wrong: %v", rows[0])
	}
}

// multiset renders rows order-insensitively for cross-plan comparison.
func multiset(rows []types.Record) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%v", r)
	}
	sort.Strings(out)
	return out
}

func addDept(t *testing.T, env *core.Env, withIndex bool) {
	t.Helper()
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "dept", deptSchema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	d, _ := env.OpenRelationByName("dept")
	names := []string{"eng", "ops", "hr", "fin", "mkt", "it", "qa", "rd", "pr", "biz"}
	for i, n := range names {
		d.Insert(tx, types.Record{types.Int(int64(i)), types.Str(n)})
	}
	if withIndex {
		if _, err := env.CreateAttachment(tx, "dept", "btree",
			core.AttrList{"name": "bydno", "on": "dno", "unique": "true"}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
}

func TestNestedLoopJoin(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 30)
	addDept(t, env, false)
	q := plan.Query{
		Table:     "emp",
		Filter:    expr.Lt(expr.Field(0), expr.Const(types.Int(5))),
		Fields:    []int{0, 1},
		Join:      &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
		ForceJoin: "nl",
	}
	rows, b := runQuery(t, env, q)
	if !strings.HasPrefix(b.Explain(), "nestedloop(") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 3 || r[2].K != types.KindString {
			t.Fatalf("bad joined row %v", r)
		}
	}
}

// TestHashJoinChosen: without a keyed path on the inner side, the cost
// model prefers one hash build over re-scanning the inner relation per
// outer row — and the hash join returns exactly the nested loop's rows.
func TestHashJoinChosen(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 30)
	addDept(t, env, false)
	q := plan.Query{
		Table:  "emp",
		Fields: []int{0, 1},
		Join:   &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
	}
	rows, b := runQuery(t, env, q)
	if !strings.HasPrefix(b.Explain(), "hash(") {
		t.Fatalf("explain = %s", b.Explain())
	}
	nq := q
	nq.ForceJoin = "nl"
	nlrows, nb := runQuery(t, env, nq)
	if !strings.HasPrefix(nb.Explain(), "nestedloop(") {
		t.Fatalf("forced nl explain = %s", nb.Explain())
	}
	if got, want := multiset(rows), multiset(nlrows); !reflect.DeepEqual(got, want) {
		t.Fatalf("hash join rows diverge from nested loop:\n hash=%v\n   nl=%v", got, want)
	}
}

func TestIndexNestedLoopJoinChosen(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 30)
	addDept(t, env, true)
	// Grow the inner side until per-row keyed probes beat building a hash
	// table over it, and give the planner statistics to price the probes.
	tx := env.Begin()
	if _, err := env.CreateAttachment(tx, "dept", "stats", nil); err != nil {
		t.Fatal(err)
	}
	d, _ := env.OpenRelationByName("dept")
	for i := 10; i < 1000; i++ {
		d.Insert(tx, types.Record{types.Int(int64(i)), types.Str("filler")})
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	q := plan.Query{
		Table: "emp",
		Join:  &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
	}
	rows, b := runQuery(t, env, q)
	if !strings.HasPrefix(b.Explain(), "indexNL(") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every row's dept name matches its dno.
	names := []string{"eng", "ops", "hr", "fin", "mkt", "it", "qa", "rd", "pr", "biz"}
	for _, r := range rows {
		if r[3].S != names[r[1].AsInt()] {
			t.Fatalf("join mismatch: %v", r)
		}
	}
}

func TestJoinIndexPlan(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 30)
	addDept(t, env, false)
	tx := env.Begin()
	if _, err := env.CreateAttachment(tx, "emp", "joinindex",
		core.AttrList{"name": "ed", "on": "dno", "peer": "dept"}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "dept", "joinindex",
		core.AttrList{"name": "ed", "on": "dno", "peer": "emp"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	q := plan.Query{
		Table: "emp",
		Join:  &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}, JoinIndex: "ed"},
	}
	rows, b := runQuery(t, env, q)
	if !strings.HasPrefix(b.Explain(), "joinindex(") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestJoinStrategiesAgree(t *testing.T) {
	// All three join strategies must produce the same multiset of rows.
	canonical := func(rows []types.Record) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		sort.Strings(out)
		return out
	}

	run := func(prep func(env *core.Env), join plan.JoinSpec) []string {
		env := core.NewEnv(core.Config{})
		loadEmp(t, env, "memory", nil, 40)
		addDept(t, env, false)
		if prep != nil {
			prep(env)
		}
		q := plan.Query{Table: "emp", Fields: []int{0, 1}, Join: &join}
		rows, _ := runQuery(t, env, q)
		return canonical(rows)
	}

	base := plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}}
	nl := run(nil, base)
	inl := run(func(env *core.Env) {
		tx := env.Begin()
		env.CreateAttachment(tx, "dept", "btree", core.AttrList{"on": "dno"})
		tx.Commit()
	}, base)
	jiSpec := base
	jiSpec.JoinIndex = "ed"
	ji := run(func(env *core.Env) {
		tx := env.Begin()
		env.CreateAttachment(tx, "emp", "joinindex", core.AttrList{"name": "ed", "on": "dno", "peer": "dept"})
		env.CreateAttachment(tx, "dept", "joinindex", core.AttrList{"name": "ed", "on": "dno", "peer": "emp"})
		tx.Commit()
	}, jiSpec)

	if len(nl) != len(inl) || len(nl) != len(ji) {
		t.Fatalf("row counts differ: nl=%d inl=%d ji=%d", len(nl), len(inl), len(ji))
	}
	for i := range nl {
		if nl[i] != inl[i] || nl[i] != ji[i] {
			t.Fatalf("row %d differs:\n nl=%s\ninl=%s\n ji=%s", i, nl[i], inl[i], ji[i])
		}
	}
}

func TestPlanInvalidationOnDropIndex(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 200)
	tx := env.Begin()
	env.CreateAttachment(tx, "emp", "btree", core.AttrList{"name": "byeno", "on": "eno"})
	tx.Commit()

	p := plan.New(env)
	q := plan.Query{Table: "emp", Filter: expr.Eq(expr.Field(0), expr.Const(types.Int(9)))}
	b, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Explain(), "btree") {
		t.Fatalf("initial explain = %s", b.Explain())
	}

	// Drop the index: the bound plan's dependency is invalidated and the
	// next execution automatically re-translates to a scan.
	tx2 := env.Begin()
	if _, err := env.DropAttachment(tx2, "emp", "btree", core.AttrList{"name": "byeno"}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	tx3 := env.Begin()
	rows, err := plan.Collect(b.Execute(tx3))
	if err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	if b.Replans != 1 {
		t.Fatalf("replans = %d", b.Replans)
	}
	if !strings.HasPrefix(b.Explain(), "scan(") {
		t.Fatalf("re-translated explain = %s", b.Explain())
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 9 {
		t.Fatalf("rows after re-translation = %v", rows)
	}
}

func TestPlanPicksUpNewIndexAfterInvalidation(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 200)
	p := plan.New(env)
	q := plan.Query{Table: "emp", Filter: expr.Eq(expr.Field(0), expr.Const(types.Int(9)))}
	b, _ := p.Plan(q)
	if !strings.HasPrefix(b.Explain(), "scan(") {
		t.Fatalf("initial explain = %s", b.Explain())
	}
	tx := env.Begin()
	env.CreateAttachment(tx, "emp", "btree", core.AttrList{"on": "eno"})
	tx.Commit()

	tx2 := env.Begin()
	if _, err := plan.Collect(b.Execute(tx2)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if !strings.Contains(b.Explain(), "btree") {
		t.Fatalf("plan did not adopt the new index: %s", b.Explain())
	}
}

func TestUnknownTableFails(t *testing.T) {
	env := core.NewEnv(core.Config{})
	p := plan.New(env)
	if _, err := p.Plan(plan.Query{Table: "ghost"}); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestSpatialQueryUsesRTree(t *testing.T) {
	env := core.NewEnv(core.Config{})
	s := types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "shape", Kind: types.KindBytes},
	)
	tx := env.Begin()
	env.CreateRelation(tx, "parcels", s, "memory", nil)
	env.CreateAttachment(tx, "parcels", "rtree", core.AttrList{"on": "shape"})
	r, _ := env.OpenRelationByName("parcels")
	for i := 0; i < 100; i++ {
		x := float64(i%10) * 10
		y := float64(i/10) * 10
		r.Insert(tx, types.Record{types.Int(int64(i)), expr.NewBox(x, y, x+1, y+1).Value()})
	}
	tx.Commit()

	query := expr.NewBox(0, 0, 15, 15)
	q := plan.Query{Table: "parcels", Filter: expr.Encloses(expr.Const(query.Value()), expr.Field(1))}
	rows, b := runQuery(t, env, q)
	if !strings.Contains(b.Explain(), "rtree") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 4 { // (0,0),(10,0),(0,10),(10,10)
		t.Fatalf("spatial rows = %d", len(rows))
	}
}

func TestOrderedAccessViaIndex(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "heap", nil, 500)
	tx := env.Begin()
	env.CreateAttachment(tx, "emp", "btree", core.AttrList{"name": "bysalary", "on": "salary"})
	tx.Commit()

	p := plan.New(env)
	// Full-table ORDER BY: an unclustered ordered pass fetches every
	// record individually, so the planner correctly prefers scan + sort.
	full, err := p.Plan(plan.Query{Table: "emp", Fields: []int{2}, OrderBy: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Ordered() {
		t.Fatalf("full-table ORDER BY should not pick the ordered pass: %s", full.Explain())
	}
	// Top-k: with a small limit the ordered access streams and wins.
	b, err := p.Plan(plan.Query{Table: "emp", Fields: []int{2}, OrderBy: []int{2}, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Ordered() || !strings.Contains(b.Explain(), "btree") {
		t.Fatalf("ordered=%v explain=%s", b.Ordered(), b.Explain())
	}
	tx2 := env.Begin()
	rows, err := plan.Collect(b.Execute(tx2))
	if err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if len(rows) != 500 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].AsFloat() > rows[i][0].AsFloat() {
			t.Fatalf("not ordered at %d: %v > %v", i, rows[i-1][0], rows[i][0])
		}
	}
}

func TestOrderedFlagFalseWithoutSuitableIndex(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "heap", nil, 100)
	p := plan.New(env)
	b, err := p.Plan(plan.Query{Table: "emp", OrderBy: []int{2}, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Ordered() {
		t.Fatalf("heap scan reported ordered: %s", b.Explain())
	}
}

func TestOrderedViaBTreeStorageMethod(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "btree", core.AttrList{"key": "eno"}, 200)
	p := plan.New(env)
	b, err := p.Plan(plan.Query{Table: "emp", Fields: []int{0}, OrderBy: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Ordered() {
		t.Fatalf("btree storage method should deliver key order: %s", b.Explain())
	}
	tx := env.Begin()
	rows, _ := plan.Collect(b.Execute(tx))
	tx.Commit()
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].AsInt() > rows[i][0].AsInt() {
			t.Fatal("not in key order")
		}
	}
}

func TestExecStatsSingleTable(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 20)
	q := plan.Query{
		Table:  "emp",
		Filter: expr.Lt(expr.Field(0), expr.Const(types.Int(7))),
	}
	rows, b := runQuery(t, env, q)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	stats := b.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	st := stats[0]
	if st.Name != b.Explain() {
		t.Errorf("operator name %q, explain %q", st.Name, b.Explain())
	}
	if st.Rows != 7 {
		t.Errorf("rows counted = %d, want 7", st.Rows)
	}
	// Collect drives Next until exhaustion: rows + the final miss.
	if st.Calls != 8 {
		t.Errorf("calls = %d, want 8", st.Calls)
	}
	if st.TimeNanos <= 0 {
		t.Errorf("time = %d, want > 0", st.TimeNanos)
	}
	if !strings.Contains(b.ExplainAnalyze(), "calls=8 rows=7") {
		t.Errorf("ExplainAnalyze = %q", b.ExplainAnalyze())
	}
}

func TestExecStatsJoinOperators(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 30)
	addDept(t, env, true)
	q := plan.Query{
		Table:     "emp",
		Join:      &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
		ForceJoin: "indexnl",
	}
	rows, b := runQuery(t, env, q)
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	stats := b.Stats()
	if len(stats) != 2 {
		t.Fatalf("want outer + probe operators, got %+v", stats)
	}
	outer, probe := stats[0], stats[1]
	if !strings.HasPrefix(probe.Name, "probe(dept") {
		t.Errorf("probe operator name = %q", probe.Name)
	}
	if outer.Rows != 30 || probe.Rows != 30 {
		t.Errorf("rows: outer=%d probe=%d, want 30/30", outer.Rows, probe.Rows)
	}

	// Stats reset on re-execution.
	tx := env.Begin()
	defer tx.Commit()
	if _, err := plan.Collect(b.Execute(tx)); err != nil {
		t.Fatal(err)
	}
	if got := len(b.Stats()); got != 2 {
		t.Errorf("stats after re-execute = %d operators, want 2", got)
	}
	if b.Stats()[1].Rows != 30 {
		t.Errorf("re-executed probe rows = %d, want 30", b.Stats()[1].Rows)
	}
}

// TestExecStatsMatchTracedOperatorSpans runs a join plan whose probe side
// fires the inner table's btree attachment inside a fully-sampled traced
// transaction, then cross-checks the two observability layers: every
// operator's ExecStats total must equal its plan.op span duration exactly
// (the span is closed from the same counter), and the work dispatched
// during the operator's cursor calls — attachment lookups on the probe —
// must appear as child spans whose durations sum to no more than the
// operator's own total.
func TestExecStatsMatchTracedOperatorSpans(t *testing.T) {
	env := core.NewEnv(core.Config{TraceSample: 1})
	loadEmp(t, env, "memory", nil, 40)
	addDept(t, env, true) // btree attachment on dept: the probe fires it per outer row
	q := plan.Query{
		Table:     "emp",
		Join:      &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
		ForceJoin: "indexnl",
	}
	p := plan.New(env)
	b, err := p.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	tx := env.Begin()
	if !tx.Trace().Detailed() {
		t.Fatal("TraceSample=1 must give every transaction a detailed trace")
	}
	txnID := uint64(tx.ID())
	rows, err := plan.Collect(b.Execute(tx))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	stats := b.Stats()
	if len(stats) != 2 {
		t.Fatalf("want outer + probe operators, got %+v", stats)
	}

	// The ring also holds the (fully sampled) load transactions; pick the
	// query's own trace by transaction id.
	var td *trace.TraceData
	for _, cand := range env.Tracer.Traces(0) {
		if cand.TxnID == txnID {
			td = &cand
			break
		}
	}
	if td == nil || !td.Sampled || td.State != "committed" {
		t.Fatalf("query trace not in ring or wrong shape: %+v", td)
	}

	// Operator spans hang off the root (no statement layer here: the plan
	// was executed directly, not through a session).
	ops := map[string]trace.SpanData{}
	for _, c := range td.Root.Children {
		if c.Name == "plan.op" {
			ops[c.Ext] = c
		}
	}
	if len(ops) != 2 {
		t.Fatalf("plan.op spans = %d, want 2 (root children %+v)", len(ops), td.Root.Children)
	}
	for _, st := range stats {
		sp, ok := ops[st.Name]
		if !ok {
			t.Fatalf("no span for operator %q", st.Name)
		}
		if sp.DurNanos != st.TimeNanos {
			t.Errorf("operator %q: span dur %dns, ExecStats %dns", st.Name, sp.DurNanos, st.TimeNanos)
		}
		var childSum int64
		for _, c := range sp.Children {
			childSum += c.DurNanos
		}
		if childSum > st.TimeNanos {
			t.Errorf("operator %q: children sum %dns exceeds operator total %dns",
				st.Name, childSum, st.TimeNanos)
		}
	}

	// The probe operator dispatched through dept's btree attachment: its
	// lookups must be recorded as att.* child spans under the probe span.
	probe := ops[stats[1].Name]
	attLookups := 0
	for _, c := range probe.Children {
		if strings.HasPrefix(c.Name, "att.") {
			attLookups++
		}
	}
	if attLookups == 0 {
		t.Errorf("probe span %q has no attachment child spans: %+v", probe.Ext, probe.Children)
	}
}

// TestForcedPathsAgree is the planner differential test: for each query
// shape, every access path that claims to be usable must return exactly
// the same multiset of rows as the storage-method full scan.
func TestForcedPathsAgree(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "heap", nil, 200)
	tx := env.Begin()
	if _, err := env.CreateAttachment(tx, "emp", "btree", core.AttrList{"name": "bydno", "on": "dno"}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "emp", "hash", core.AttrList{"name": "byeno", "on": "eno"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	queries := map[string]plan.Query{
		"eq-eno":     {Table: "emp", Filter: expr.Eq(expr.Field(0), expr.Const(types.Int(7)))},
		"eq-dno":     {Table: "emp", Filter: expr.Eq(expr.Field(1), expr.Const(types.Int(3)))},
		"range-dno":  {Table: "emp", Filter: expr.Lt(expr.Field(1), expr.Const(types.Int(4)))},
		"unfiltered": {Table: "emp"},
		"projected":  {Table: "emp", Filter: expr.Eq(expr.Field(1), expr.Const(types.Int(5))), Fields: []int{0, 2}},
	}
	paths := []core.AttID{0, core.AttBTree, core.AttHash}
	for name, q := range queries {
		q.ForcePath = &plan.ForcedPath{Att: 0}
		baseline, _ := runQuery(t, env, q)
		want := multiset(baseline)
		viable := 1
		for _, att := range paths[1:] {
			fq := q
			fq.ForcePath = &plan.ForcedPath{Att: att}
			p := plan.New(env)
			b, err := p.Plan(fq)
			if errors.Is(err, plan.ErrForcedUnusable) {
				continue // this path cannot answer this query shape
			}
			if err != nil {
				t.Fatalf("%s att %d: %v", name, att, err)
			}
			viable++
			tx := env.Begin()
			rows, err := plan.Collect(b.Execute(tx))
			tx.Commit()
			if err != nil {
				t.Fatalf("%s att %d: %v", name, att, err)
			}
			got := multiset(rows)
			if len(got) != len(want) {
				t.Fatalf("%s via att %d: %d rows, scan has %d", name, att, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s via att %d differs at %d: %q vs %q", name, att, i, got[i], want[i])
				}
			}
		}
		// Sanity: the matrix actually exercises indexed paths where expected.
		switch name {
		case "eq-eno": // scan + hash (the btree is on dno)
			if viable != 2 {
				t.Fatalf("eq-eno: %d viable paths, want 2", viable)
			}
		case "range-dno", "eq-dno": // scan + btree (hash answers only eq on eno)
			if viable != 2 {
				t.Fatalf("%s: %d viable paths, want 2", name, viable)
			}
		}
	}
}

// TestForcedPathUnusableIsAnError pins the failure mode: forcing a hash
// index for a range query must fail with ErrForcedUnusable, not silently
// fall back to another path.
func TestForcedPathUnusableIsAnError(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "heap", nil, 20)
	tx := env.Begin()
	if _, err := env.CreateAttachment(tx, "emp", "hash", core.AttrList{"name": "byeno", "on": "eno"}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	_, err := plan.New(env).Plan(plan.Query{
		Table:     "emp",
		Filter:    expr.Lt(expr.Field(0), expr.Const(types.Int(5))),
		ForcePath: &plan.ForcedPath{Att: core.AttHash},
	})
	if !errors.Is(err, plan.ErrForcedUnusable) {
		t.Fatalf("err = %v, want ErrForcedUnusable", err)
	}
}
