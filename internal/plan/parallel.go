package plan

// Intra-query parallel execution: partitioned parallel scans behind an
// exchange operator, and the partitioned hash join. The shape follows the
// partitioned-parallel operator model — the storage method splits its
// record-key space (core.RangePartitioner), each partition is driven by a
// worker goroutine with its own cursor, and an exchange merges the worker
// streams back into the single-threaded plan above.
//
// Concurrency rules: scans are OPENED in the planning goroutine (lock
// acquisition, authorization, and trace attribution are goroutine-confined
// there), then each scan is driven by exactly one worker. Workers never
// touch the transaction, the trace, or shared planner state — they count
// into their own OperatorStats slot and the lock-free obs counters, and
// the exchange's Close (cancel, then WaitGroup) is the barrier that makes
// those counters readable.

import (
	"fmt"
	"sync"
	"time"

	"dmx/internal/core"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// exchItem is one unit on a worker→exchange channel.
type exchItem struct {
	rec types.Record
	err error
	eof bool
}

// workerChanBuf decouples workers from the consumer.
const workerChanBuf = 64

// partitionRanges clips the partitioner's split keys to [start, end) and
// returns the per-worker scan ranges (nil = unbounded side). Empty ranges
// are dropped, so the result may be shorter than requested.
func partitionRanges(bounds []types.Key, start, end types.Key) [][2]types.Key {
	cuts := make([]types.Key, 0, len(bounds)+2)
	cuts = append(cuts, start)
	for _, b := range bounds {
		if start != nil && b.Compare(start) <= 0 {
			continue
		}
		if end != nil && b.Compare(end) >= 0 {
			continue
		}
		cuts = append(cuts, b)
	}
	cuts = append(cuts, end)
	out := make([][2]types.Key, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if lo != nil && hi != nil && lo.Compare(hi) >= 0 {
			continue
		}
		out = append(out, [2]types.Key{lo, hi})
	}
	return out
}

// openParallelScan opens the partitioned parallel scan for a storage-method
// access: one scan per partition, one worker per scan, merged by an
// exchange. ordered preserves record-key order by draining the (key-ordered)
// partitions sequentially. Falls back to a single worker when the store
// cannot split the range.
func (p *Planner) openParallelScan(tx *txn.Txn, b *Bound, a *access, fields []int, degree int) (Rows, error) {
	rel, err := p.env.OpenRelation(a.rd)
	if err != nil {
		return nil, err
	}
	var bounds []types.Key
	if part, ok := rel.Storage().(core.RangePartitioner); ok && degree > 1 {
		bounds = part.PartitionBounds(degree)
	}
	ranges := partitionRanges(bounds, a.start, a.end)
	if len(ranges) == 0 {
		ranges = [][2]types.Key{{a.start, a.end}}
	}

	ex := &exchangeRows{
		planner: p,
		cancel:  make(chan struct{}),
		ordered: len(b.query.OrderBy) > 0 && a.estimate.Ordered,
	}
	// The exchange subscribes its shutdown BEFORE the partition scans
	// subscribe theirs: transaction-end teardown then stops the workers
	// first and the (idempotent) scan closers run after, so no worker is
	// left driving a closed cursor.
	if err := tx.Subscribe(txn.EventEnd, func(*txn.Txn, string) error {
		return ex.Close()
	}); err != nil {
		return nil, err
	}

	opts := core.ScanOptions{Filter: a.pushdown, Fields: fields}
	for _, rg := range ranges {
		o := opts
		o.Start, o.End = rg[0], rg[1]
		scan, err := rel.OpenScan(tx, o)
		if err != nil {
			ex.Close()
			return nil, err
		}
		ex.scans = append(ex.scans, scan)
	}
	start := time.Now()
	ex.start(b, "pscan.worker")
	p.env.Obs.Plan.ParallelScans.Inc()
	tx.Trace().Event("plan.parallel", "plan", fmt.Sprintf("scan workers=%d", len(ex.scans)), start, time.Since(start), nil)
	name := fmt.Sprintf("pscan(%s, workers=%d)", a.rd.Name, len(ex.scans))
	return b.track(tx, name, ex), nil
}

// exchangeRows merges N worker-driven partition scans into one cursor.
type exchangeRows struct {
	planner *Planner
	cancel  chan struct{}
	wg      sync.WaitGroup
	scans   []core.Scan
	ordered bool
	closed  bool

	// Unordered mode: one shared channel, live counts running workers.
	ch   chan exchItem
	live int

	// Ordered mode: per-worker channels drained in partition (key) order.
	chans []chan exchItem
	cur   int
}

// start launches one worker per scan. Each worker gets its own
// OperatorStats slot (registered now, in the planning goroutine, so
// b.stats is never appended concurrently); the slot's counters are written
// only by its worker and read only after the exchange's WaitGroup barrier.
func (ex *exchangeRows) start(b *Bound, label string) {
	n := len(ex.scans)
	if ex.ordered {
		ex.chans = make([]chan exchItem, n)
	} else {
		ex.ch = make(chan exchItem, n*workerChanBuf)
		ex.live = n
	}
	obsEng := ex.planner.env.Obs
	for i, sc := range ex.scans {
		st := &OperatorStats{Name: fmt.Sprintf("%s[%d]", label, i)}
		b.stats = append(b.stats, st)
		ch := ex.ch
		if ex.ordered {
			ch = make(chan exchItem, workerChanBuf)
			ex.chans[i] = ch
		}
		ex.wg.Add(1)
		obsEng.Plan.Workers.Inc()
		go func(sc core.Scan, ch chan exchItem, st *OperatorStats) {
			defer ex.wg.Done()
			defer obsEng.Plan.Workers.Dec()
			for {
				select {
				case <-ex.cancel:
					return
				default:
				}
				t0 := time.Now()
				_, rec, ok, err := sc.Next()
				st.Calls++
				st.TimeNanos += time.Since(t0).Nanoseconds()
				if err != nil || !ok {
					select {
					case ch <- exchItem{err: err, eof: true}:
					case <-ex.cancel:
					}
					return
				}
				st.Rows++
				obsEng.Plan.WorkerRows.Inc()
				select {
				case ch <- exchItem{rec: rec}:
				case <-ex.cancel:
					return
				}
			}
		}(sc, ch, st)
	}
}

func (ex *exchangeRows) Next() (types.Record, bool, error) {
	if ex.closed {
		return nil, false, nil
	}
	if ex.ordered {
		for ex.cur < len(ex.chans) {
			it := <-ex.chans[ex.cur]
			if it.eof {
				if it.err != nil {
					return nil, false, it.err
				}
				ex.cur++
				continue
			}
			return it.rec, true, nil
		}
		return nil, false, nil
	}
	for ex.live > 0 {
		it := <-ex.ch
		if it.eof {
			if it.err != nil {
				return nil, false, it.err
			}
			ex.live--
			continue
		}
		return it.rec, true, nil
	}
	return nil, false, nil
}

// Close stops the workers (cancel, then barrier) and closes the partition
// scans. Safe to call early (mid-stream), repeatedly, and from the
// transaction-end teardown.
func (ex *exchangeRows) Close() error {
	if ex.closed {
		return nil
	}
	ex.closed = true
	close(ex.cancel)
	ex.wg.Wait()
	var first error
	for _, sc := range ex.scans {
		if err := sc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// openHashJoin executes the equi-join by building a hash table over the
// inner relation (with partitioned parallel build workers when the inner
// storage method can split) and probing it with each outer row.
func (p *Planner) openHashJoin(tx *txn.Txn, b *Bound, outer *access, innerRD *core.RelDesc, q Query, degree int) (Rows, error) {
	innerRel, err := p.env.OpenRelation(innerRD)
	if err != nil {
		return nil, err
	}
	j := q.Join

	// Build side: partition the inner relation and fill one table per
	// worker; the probe consults all of them (the partition count is small).
	var bounds []types.Key
	if part, ok := innerRel.Storage().(core.RangePartitioner); ok && degree > 1 {
		bounds = part.PartitionBounds(degree)
	}
	ranges := partitionRanges(bounds, nil, nil)
	if len(ranges) == 0 {
		ranges = [][2]types.Key{{nil, nil}}
	}
	scans := make([]core.Scan, 0, len(ranges))
	for _, rg := range ranges {
		scan, err := innerRel.OpenScan(tx, core.ScanOptions{Start: rg[0], End: rg[1], Filter: j.Filter})
		if err != nil {
			for _, sc := range scans {
				sc.Close()
			}
			return nil, err
		}
		scans = append(scans, scan)
	}

	buildStart := time.Now()
	tables := make([]map[string][]types.Record, len(scans))
	errs := make([]error, len(scans))
	var wg sync.WaitGroup
	obsEng := p.env.Obs
	stats := make([]*OperatorStats, len(scans))
	for i := range scans {
		stats[i] = &OperatorStats{Name: fmt.Sprintf("hashbuild.worker[%d]", i)}
		b.stats = append(b.stats, stats[i])
	}
	for i, sc := range scans {
		wg.Add(1)
		obsEng.Plan.Workers.Inc()
		go func(i int, sc core.Scan, st *OperatorStats) {
			defer wg.Done()
			defer obsEng.Plan.Workers.Dec()
			table := make(map[string][]types.Record)
			for {
				t0 := time.Now()
				_, rec, ok, err := sc.Next()
				st.Calls++
				st.TimeNanos += time.Since(t0).Nanoseconds()
				if err != nil {
					errs[i] = err
					break
				}
				if !ok {
					break
				}
				kv := rec[j.InnerCol]
				if kv.IsNull() {
					continue // NULL never equi-joins
				}
				st.Rows++
				obsEng.Plan.WorkerRows.Inc()
				proj := rec
				if j.Fields != nil {
					proj = rec.Project(j.Fields)
				}
				hk := string(kv.AppendOrderedEncode(nil))
				table[hk] = append(table[hk], proj)
			}
			tables[i] = table
		}(i, sc, stats[i])
	}
	wg.Wait()
	var firstErr error
	for _, sc := range scans {
		if err := sc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	built := 0
	for _, t := range tables {
		for _, v := range t {
			built += len(v)
		}
	}
	obsEng.Plan.HashJoins.Inc()
	tx.Trace().Event("plan.hashjoin", "plan",
		fmt.Sprintf("build workers=%d rows=%d", len(scans), built), buildStart, time.Since(buildStart), nil)

	outerRows, err := p.openAccess(tx, b, outer, nil)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("hash(%s, build=%d, workers=%d)", innerRD.Name, built, len(scans))
	return b.track(tx, name, &hashJoinRows{
		q: q, outer: outerRows, tables: tables,
	}), nil
}

// hashJoinRows probes the built tables with each outer row.
type hashJoinRows struct {
	q      Query
	outer  Rows
	tables []map[string][]types.Record

	curOuter types.Record
	pending  []types.Record
}

func (r *hashJoinRows) Next() (types.Record, bool, error) {
	j := r.q.Join
	for {
		if len(r.pending) > 0 {
			inner := r.pending[0]
			r.pending = r.pending[1:]
			return joinRecords(r.curOuter, r.q.Fields, inner), true, nil
		}
		rec, ok, err := r.outer.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		kv := rec[j.OuterCol]
		if kv.IsNull() {
			continue
		}
		hk := string(kv.AppendOrderedEncode(nil))
		r.curOuter = rec
		r.pending = r.pending[:0]
		for _, t := range r.tables {
			if matches := t[hk]; len(matches) > 0 {
				r.pending = append(r.pending, matches...)
			}
		}
	}
}

func (r *hashJoinRows) Close() error { return r.outer.Close() }
