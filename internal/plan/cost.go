package plan

// The planner-side cost library: statistics-derived selectivities, degree
// selection for partitioned parallel scans, and the join strategy cost
// model. Storage methods and attachments receive the per-conjunct
// selectivities through core.CostRequest.ConjunctSel, so the figures the
// planner compares come from the extensions themselves, fed with honest
// numbers instead of textbook guesses.

import (
	"math"
	"runtime"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/types"
)

// minRowsPerWorker is the scan work below which an extra parallel worker
// is not worth its startup and channel overhead.
const minRowsPerWorker = 2048

// tableStatsFor returns the statistics snapshot for rd when a stats
// attachment is present (discovered structurally via TableStatsProvider).
func (p *Planner) tableStatsFor(rd *core.RelDesc) (core.TableStats, bool) {
	if !rd.HasAttachment(core.AttStats) {
		return core.TableStats{}, false
	}
	inst, err := p.env.AttachmentInstance(rd, core.AttStats)
	if err != nil {
		return core.TableStats{}, false
	}
	prov, ok := inst.(core.TableStatsProvider)
	if !ok {
		return core.TableStats{}, false
	}
	return prov.TableStats(), true
}

// conjunctSels derives a per-conjunct selectivity vector from ts, parallel
// to conjuncts. Entries are -1 ("no estimate") for conjuncts the
// statistics cannot judge; extensions then fall back to their textbook
// guesses for those entries only.
func conjunctSels(ts core.TableStats, ok bool, conjuncts []*expr.Expr) []float64 {
	if !ok || len(conjuncts) == 0 {
		return nil
	}
	sels := make([]float64, len(conjuncts))
	any := false
	for i, c := range conjuncts {
		sels[i] = -1
		fc, isCmp := expr.MatchFieldCompare(c)
		if !isCmp {
			continue
		}
		cs, have := ts.Cols[fc.Field]
		if !have {
			continue
		}
		if s := columnSelectivity(cs, fc.Op, fc.Value); s >= 0 {
			sels[i] = s
			any = true
		}
	}
	if !any {
		return nil
	}
	return sels
}

// columnSelectivity estimates the fraction of rows satisfying
// `col <op> v` from one column's statistics. Returns -1 when the
// statistics cannot judge the comparison.
func columnSelectivity(cs core.ColumnStats, op expr.Op, v types.Value) float64 {
	nonNull := 1 - cs.NullFrac
	switch op {
	case expr.OpEq:
		if cs.Distinct >= 1 {
			return clampSel(nonNull / cs.Distinct)
		}
		return -1
	case expr.OpNe:
		if cs.Distinct >= 1 {
			return clampSel(nonNull * (1 - 1/cs.Distinct))
		}
		return -1
	case expr.OpLt, expr.OpLe:
		if f := histFractionBelow(cs.Hist, v); f >= 0 {
			return clampSel(nonNull * f)
		}
		return -1
	case expr.OpGt, expr.OpGe:
		if f := histFractionBelow(cs.Hist, v); f >= 0 {
			return clampSel(nonNull * (1 - f))
		}
		return -1
	default:
		return -1
	}
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// histFractionBelow estimates the fraction of values strictly below v from
// equi-depth histogram bounds (ascending, B+1 bounds for B equal buckets).
// Numeric bucket ends are interpolated within the containing bucket;
// other kinds count half the bucket. Returns -1 without a histogram.
func histFractionBelow(hist []types.Value, v types.Value) float64 {
	b := len(hist) - 1
	if b < 1 {
		return -1
	}
	if types.Compare(v, hist[0]) <= 0 {
		return 0
	}
	if types.Compare(v, hist[b]) >= 0 {
		return 1
	}
	// Find the bucket [hist[i], hist[i+1]) containing v.
	for i := 0; i < b; i++ {
		if types.Compare(v, hist[i+1]) > 0 {
			continue
		}
		frac := 0.5
		lo, hi := hist[i], hist[i+1]
		if numericValue(lo) && numericValue(hi) && numericValue(v) {
			if span := hi.AsFloat() - lo.AsFloat(); span > 0 {
				frac = (v.AsFloat() - lo.AsFloat()) / span
			}
		}
		return (float64(i) + clampSel(frac)) / float64(b)
	}
	return 1
}

// numericValue reports an INT or FLOAT value (interpolation-capable).
func numericValue(v types.Value) bool { return v.K == types.KindInt || v.K == types.KindFloat }

// chooseDegree picks the parallel-scan worker count for an access expected
// to touch workRows records: one worker per minRowsPerWorker, capped by
// GOMAXPROCS. forced > 0 pins the degree (1 = serial).
func chooseDegree(workRows float64, forced int) int {
	if forced > 0 {
		return forced
	}
	d := int(workRows / minRowsPerWorker)
	if max := runtime.GOMAXPROCS(0); d > max {
		d = max
	}
	if d < 1 {
		d = 1
	}
	return d
}

// joinCosts holds the planner's estimates for the candidate join
// strategies, in the Total() cost unit (IO*10 + CPU).
type joinCosts struct {
	outerRows float64 // expected outer rows after the outer filter
	innerRows float64 // inner relation cardinality
	naiveNL   float64
	indexNL   float64 // +Inf without a usable probe path
	hash      float64 // +Inf when the join columns hash-incompatibly
}

// scanOpenOverhead approximates the fixed cost of opening one inner scan
// (lock acquisition, cursor setup) in Total() units.
const scanOpenOverhead = 8

// hashJoinOverhead is the fixed cost of standing up the hash-join build
// side (table allocation, worker start).
const hashJoinOverhead = 64

// estimateJoinCosts prices the three generic join strategies. probeCost is
// the per-outer-row cost of the best keyed probe (attachment lookup or
// storage-method keyed scan), or +Inf when none is usable. innerScan is
// the inner storage method's estimate for a full filtered pass.
func estimateJoinCosts(outerEst core.CostEstimate, outerCount int, innerScan core.CostEstimate,
	innerRows float64, probeCost float64, hashable bool) joinCosts {
	outerRows := math.Max(1, float64(outerCount)*outerEst.Selectivity)
	c := joinCosts{outerRows: outerRows, innerRows: innerRows}
	c.naiveNL = outerEst.Total() + outerRows*(innerScan.Total()+scanOpenOverhead)
	c.indexNL = math.Inf(1)
	if !math.IsInf(probeCost, 1) {
		// Each probe also direct-fetches its matching records (~1 per probe
		// for the common key-to-key equi-join).
		c.indexNL = outerEst.Total() + outerRows*(probeCost+1)
	}
	c.hash = math.Inf(1)
	if hashable {
		build := innerScan.Total() + innerRows*0.5
		probe := outerRows * 1.0
		c.hash = outerEst.Total() + build + probe + hashJoinOverhead
	}
	return c
}

// hashCompatible reports whether an equi-join on outer column oc and inner
// column ic can be executed by hashing encoded values: the column kinds
// must match exactly, because the order-preserving encoding of Int(1) and
// Float(1) differ even though expression equality coerces them.
func hashCompatible(outer, inner *types.Schema, oc, ic int) bool {
	if oc < 0 || oc >= len(outer.Cols) || ic < 0 || ic >= len(inner.Cols) {
		return false
	}
	return outer.Cols[oc].Kind == inner.Cols[ic].Kind
}
