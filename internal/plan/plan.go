// Package plan implements the query planner and executor over the
// extension architecture's generic interfaces.
//
// The planner hands each storage method and access-path attachment the
// query's eligible predicates; the extensions judge their relevance and
// report estimated I/O and CPU costs, and the planner picks the cheapest
// path ("the query planner will be able to determine the cost of using a
// storage method or attachment to scan a relation"). Access path zero is
// the storage method itself; an access-path plan first obtains record
// keys from the attachment and then fetches the records directly through
// the storage method.
//
// Plans are *bound*: translation embeds the relation descriptors, so
// execution touches no catalogs. Each bound plan records the identities
// and versions of the relations and access paths it depends on;
// executing a plan whose dependencies have changed automatically
// re-translates it first.
package plan

import (
	"fmt"
	"math"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/sm/smutil"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// Query is a select-project query over one table, optionally equi-joined
// with a second.
type Query struct {
	Table  string
	Filter *expr.Expr // over Table's columns
	Fields []int      // projection over Table's columns (nil = all)
	// OrderBy asks for records ordered (ascending) by these Table columns;
	// the planner prefers an access path that delivers the order (check
	// Bound.Ordered; the caller sorts when it reports false).
	OrderBy []int
	// Limit hints how many rows the caller will pull (0 = all). An ordered
	// access streams, so with a small limit it beats scan-plus-sort even
	// though a full ordered pass would not.
	Limit int
	Join  *JoinSpec
	// ForcePath, when set, pins the access path for Table instead of
	// cost-based selection — the differential tests use it to prove every
	// viable path returns the same rows.
	ForcePath *ForcedPath
	// ForceDegree pins the parallel-scan worker count instead of the
	// cardinality-based choice: 0 = automatic, 1 = serial, N = N workers
	// (the storage method may still deliver fewer partitions).
	ForceDegree int
	// ForceJoin pins the join strategy instead of the cost-based choice:
	// "" = automatic, "nl" = naive nested loop, "indexnl" = keyed probes,
	// "hash" = hash join. ErrForcedUnusable when the strategy cannot run.
	ForceJoin string
}

// ForcedPath names one access path: Att 0 is the storage method scan
// (access path zero), any other value is that attachment type. Planning
// fails with ErrForcedUnusable when the forced path cannot answer the
// query (e.g. a hash index without an equality conjunct).
type ForcedPath struct {
	Att core.AttID
}

// ErrForcedUnusable reports that a ForcePath cannot serve the query.
var ErrForcedUnusable = fmt.Errorf("plan: forced access path not usable for this query")

// JoinSpec describes an equi-join with an inner table. The result records
// are the outer projection followed by the inner projection.
type JoinSpec struct {
	Table     string
	OuterCol  int        // join column in the outer table
	InnerCol  int        // join column in the inner table
	Filter    *expr.Expr // over the inner table's columns
	Fields    []int      // projection over the inner table's columns
	JoinIndex string     // name of a join index to prefer, if it exists
}

// Rows is a tuple-at-a-time result cursor.
type Rows interface {
	Next() (types.Record, bool, error)
	Close() error
}

// Planner translates queries against an environment.
type Planner struct {
	env *core.Env
}

// New returns a planner over env.
func New(env *core.Env) *Planner { return &Planner{env: env} }

// dep is one (relation, version) a bound plan depends on.
type dep struct {
	relID   uint32
	version uint64
}

// Bound is a bound (translated) query plan.
type Bound struct {
	planner *Planner
	query   Query
	root    builder
	deps    []dep
	explain string
	ordered bool
	stats   []*OperatorStats // per-operator counters, reset each Execute
	// Replans counts automatic re-translations (for the experiments).
	Replans int
}

// Ordered reports whether the current translation delivers records in the
// query's requested order (so the caller can skip its sort). Check it
// after Execute: a re-translation may change the answer.
func (b *Bound) Ordered() bool { return b.ordered }

// builder constructs the operator tree for one execution.
type builder func(tx *txn.Txn) (Rows, error)

// Plan translates q into a bound plan.
func (p *Planner) Plan(q Query) (*Bound, error) {
	b := &Bound{planner: p, query: q}
	if err := b.translate(); err != nil {
		return nil, err
	}
	return b, nil
}

// Explain describes the chosen access paths.
func (b *Bound) Explain() string { return b.explain }

// Execute validates the plan's dependencies (re-translating if any
// relation or access path it uses changed or disappeared) and runs it.
func (b *Bound) Execute(tx *txn.Txn) (Rows, error) {
	if !b.valid() {
		if err := b.translate(); err != nil {
			return nil, fmt.Errorf("plan: re-translation failed: %w", err)
		}
		b.Replans++
	}
	b.stats = nil
	return b.root(tx)
}

func (b *Bound) valid() bool {
	for _, d := range b.deps {
		rd, ok := b.planner.env.Cat.Get(d.relID)
		if !ok || rd.Version != d.version {
			return false
		}
	}
	return true
}

// access describes a chosen single-table access path.
type access struct {
	rd       *core.RelDesc
	useAtt   core.AttID // 0 = storage method (access path zero)
	instance int
	start    types.Key
	end      types.Key
	pushdown *expr.Expr // conjuncts the path does NOT handle (re-applied)
	estimate core.CostEstimate
}

// chooseAccess asks the storage method and every access-path attachment
// for a cost estimate and picks the cheapest — or, when force is set,
// exactly the requested path.
func (p *Planner) chooseAccess(rd *core.RelDesc, filter *expr.Expr, orderBy []int, limit int, force *ForcedPath) (*access, error) {
	conjuncts := expr.Conjuncts(filter)
	ts, hasStats := p.tableStatsFor(rd)
	req := core.CostRequest{
		Conjuncts:   conjuncts,
		OrderBy:     orderBy,
		ConjunctSel: conjunctSels(ts, hasStats, conjuncts),
	}

	sm, err := p.env.StorageInstance(rd)
	if err != nil {
		return nil, err
	}
	req.RecordCount = sm.RecordCount()

	// When an order is requested, accesses that do not deliver it pay the
	// in-memory sort the caller will have to run; accesses that do deliver
	// it stream, so a row limit scales their cost down (top-k queries).
	adjusted := func(est core.CostEstimate) float64 {
		t := est.Total()
		if len(orderBy) == 0 {
			return t
		}
		expected := float64(req.RecordCount) * est.Selectivity
		if !est.Ordered {
			return t + expected*math.Log2(expected+2)*0.1
		}
		if limit > 0 && expected > float64(limit) {
			t *= float64(limit) / expected
		}
		return t
	}

	if force != nil && force.Att != 0 {
		inst, err := p.env.AttachmentInstance(rd, force.Att)
		if err != nil {
			return nil, err
		}
		ap, ok := inst.(core.AccessPath)
		if !ok {
			return nil, fmt.Errorf("%w: attachment %d is not an access path", ErrForcedUnusable, force.Att)
		}
		est := ap.EstimateCost(req)
		if !est.Usable {
			return nil, fmt.Errorf("%w: attachment %d", ErrForcedUnusable, force.Att)
		}
		best := &access{
			rd: rd, useAtt: force.Att, instance: est.Instance,
			start: est.Start, end: est.End, estimate: est,
		}
		return withResidual(best, conjuncts, est.Handled), nil
	}

	best := &access{rd: rd, useAtt: 0, estimate: sm.EstimateCost(req)}
	bestHandled := best.estimate.Handled
	best.start, best.end = best.estimate.Start, best.estimate.End

	if force != nil {
		if !best.estimate.Usable {
			return nil, fmt.Errorf("%w: storage method scan", ErrForcedUnusable)
		}
		return withResidual(best, conjuncts, bestHandled), nil
	}

	for _, attID := range rd.AttachmentTypes() {
		inst, err := p.env.AttachmentInstance(rd, attID)
		if err != nil {
			return nil, err
		}
		ap, ok := inst.(core.AccessPath)
		if !ok {
			continue
		}
		est := ap.EstimateCost(req)
		if !est.Usable {
			continue
		}
		if !best.estimate.Usable || adjusted(est) < adjusted(best.estimate) {
			best = &access{
				rd: rd, useAtt: attID, instance: est.Instance,
				start: est.Start, end: est.End, estimate: est,
			}
			bestHandled = est.Handled
		}
	}
	return withResidual(best, conjuncts, bestHandled), nil
}

// withResidual records the conjuncts the chosen path does not handle; the
// executor re-applies them against the fetched records.
func withResidual(a *access, conjuncts []*expr.Expr, handledIdx []int) *access {
	handled := map[int]bool{}
	for _, h := range handledIdx {
		handled[h] = true
	}
	var residual []*expr.Expr
	for i, c := range conjuncts {
		if !handled[i] {
			residual = append(residual, c)
		}
	}
	a.pushdown = expr.And(residual...)
	return a
}

func (a *access) describe(env *core.Env) string {
	if a.useAtt == 0 {
		ops := env.Reg.StorageOps(a.rd.SM)
		return fmt.Sprintf("scan(%s via %s)", a.rd.Name, ops.Name)
	}
	ops := env.Reg.AttachmentOps(a.useAtt)
	return fmt.Sprintf("access(%s via %s #%d)", a.rd.Name, ops.Name, a.instance)
}

// translate plans the query and captures dependencies.
func (b *Bound) translate() error {
	p := b.planner
	b.deps = nil
	rd, ok := p.env.Cat.ByName(b.query.Table)
	if !ok {
		return fmt.Errorf("plan: %w: relation %q", core.ErrNotFound, b.query.Table)
	}
	b.deps = append(b.deps, dep{rd.RelID, rd.Version})

	outer, err := p.chooseAccess(rd, b.query.Filter, b.query.OrderBy, b.query.Limit, b.query.ForcePath)
	if err != nil {
		return err
	}

	if b.query.Join == nil {
		q := b.query
		b.ordered = outer.estimate.Ordered
		// Partitioned parallel scan: only access path zero (the storage
		// method itself) partitions; the degree follows the estimated scan
		// work (CPU ≈ records touched). Partitions are drained in key order
		// when the plan's order matters, so Ordered is preserved.
		degree := 1
		if outer.useAtt == 0 {
			degree = chooseDegree(outer.estimate.CPU, q.ForceDegree)
			if degree > 1 {
				sm, err := p.env.StorageInstance(rd)
				if err != nil {
					return err
				}
				if _, ok := sm.(core.RangePartitioner); !ok {
					degree = 1
				}
			}
		}
		if degree > 1 {
			ops := p.env.Reg.StorageOps(rd.SM)
			b.explain = fmt.Sprintf("pscan(%s via %s, workers=%d)", rd.Name, ops.Name, degree)
			if b.ordered {
				b.explain += " [ordered]"
			}
			deg := degree
			b.root = func(tx *txn.Txn) (Rows, error) {
				return p.openParallelScan(tx, b, outer, q.Fields, deg)
			}
			return nil
		}
		b.explain = outer.describe(p.env)
		if b.ordered {
			b.explain += " [ordered]"
		}
		b.root = func(tx *txn.Txn) (Rows, error) {
			return p.openAccess(tx, b, outer, q.Fields)
		}
		return nil
	}
	b.ordered = false

	// Join planning.
	j := b.query.Join
	innerRD, ok := p.env.Cat.ByName(j.Table)
	if !ok {
		return fmt.Errorf("plan: %w: relation %q", core.ErrNotFound, j.Table)
	}
	b.deps = append(b.deps, dep{innerRD.RelID, innerRD.Version})

	// Strategy 1: a join index connecting the two relations.
	if j.JoinIndex != "" && rd.HasAttachment(core.AttJoin) && b.query.ForceJoin == "" {
		b.explain = fmt.Sprintf("joinindex(%s ⋈ %s via %q)", rd.Name, innerRD.Name, j.JoinIndex)
		q := b.query
		b.root = func(tx *txn.Txn) (Rows, error) {
			return p.openJoinIndex(tx, b, rd, innerRD, q)
		}
		return nil
	}

	// Generic strategies, priced against each other: index nested loops
	// (attachment probe or the inner storage method's own keyed path),
	// hash join, and the naive re-scan nested loop.
	innerStats, innerHasStats := p.tableStatsFor(innerRD)
	innerEqConjs := append(
		expr.Conjuncts(j.Filter),
		// A placeholder equality on the join column stands in for the
		// outer value bound at run time.
		expr.Eq(expr.Field(j.InnerCol), expr.Const(types.Int(0))),
	)
	innerEqReq := core.CostRequest{
		Conjuncts:   innerEqConjs,
		ConjunctSel: conjunctSels(innerStats, innerHasStats, innerEqConjs),
	}
	var probe *probeSpec
	for _, attID := range innerRD.AttachmentTypes() {
		inst, err := p.env.AttachmentInstance(innerRD, attID)
		if err != nil {
			return err
		}
		ap, ok := inst.(core.AccessPath)
		if !ok {
			continue
		}
		est := ap.EstimateCost(innerEqReq)
		if !est.Usable {
			continue
		}
		if probe == nil || est.Total() < probe.est.Total() {
			probe = &probeSpec{attID: attID, instance: est.Instance, est: est}
		}
	}
	// Also consider the inner storage method itself as a keyed path:
	// B-tree-organised relations answer join-column probes directly when
	// the run-time-bound join equality lands on their key prefix.
	innerSM, err := p.env.StorageInstance(innerRD)
	if err != nil {
		return err
	}
	smEst := innerSM.EstimateCost(innerEqReq)
	phIdx := len(innerEqConjs) - 1
	smKeyed := false
	for _, h := range smEst.Handled {
		if h == phIdx {
			smKeyed = true
		}
	}
	if smEst.Usable && smKeyed && (probe == nil || smEst.Total() < probe.est.Total()) {
		probe = &probeSpec{viaSM: true, est: smEst}
	}
	innerN := innerSM.RecordCount()

	innerScanConjs := expr.Conjuncts(j.Filter)
	innerScanEst := innerSM.EstimateCost(core.CostRequest{
		Conjuncts:   innerScanConjs,
		RecordCount: innerN,
		ConjunctSel: conjunctSels(innerStats, innerHasStats, innerScanConjs),
	})

	outerSM, err := p.env.StorageInstance(rd)
	if err != nil {
		return err
	}
	probeCost := math.Inf(1)
	if probe != nil {
		probeCost = probe.est.Total()
	}
	hashable := hashCompatible(rd.Schema, innerRD.Schema, j.OuterCol, j.InnerCol)
	costs := estimateJoinCosts(outer.estimate, outerSM.RecordCount(), innerScanEst,
		float64(innerN), probeCost, hashable)

	q := b.query
	strategy := q.ForceJoin
	switch strategy {
	case "":
		strategy = "nl"
		bestCost := costs.naiveNL
		if costs.indexNL < bestCost {
			strategy, bestCost = "indexnl", costs.indexNL
		}
		if costs.hash < bestCost {
			strategy = "hash"
		}
	case "nl":
	case "indexnl":
		if probe == nil {
			return fmt.Errorf("%w: no keyed probe path on %s", ErrForcedUnusable, innerRD.Name)
		}
	case "hash":
		if !hashable {
			return fmt.Errorf("%w: join columns of %s and %s hash incompatibly",
				ErrForcedUnusable, rd.Name, innerRD.Name)
		}
	default:
		return fmt.Errorf("plan: unknown ForceJoin %q", q.ForceJoin)
	}

	switch strategy {
	case "indexnl":
		pr := *probe
		if pr.viaSM {
			b.explain = fmt.Sprintf("indexNL(%s ⟕probe %s via sm-key)", outer.describe(p.env), innerRD.Name)
		} else {
			b.explain = fmt.Sprintf("indexNL(%s ⟕probe %s via %s #%d)",
				outer.describe(p.env), innerRD.Name, p.env.Reg.AttachmentOps(pr.attID).Name, pr.instance)
		}
		b.root = func(tx *txn.Txn) (Rows, error) {
			return p.openIndexNL(tx, b, outer, innerRD, pr, q)
		}
	case "hash":
		degree := chooseDegree(float64(innerN), q.ForceDegree)
		b.explain = fmt.Sprintf("hash(%s ⋈ %s, inner=%d)", outer.describe(p.env), innerRD.Name, innerN)
		b.root = func(tx *txn.Txn) (Rows, error) {
			return p.openHashJoin(tx, b, outer, innerRD, q, degree)
		}
	default:
		b.explain = fmt.Sprintf("nestedloop(%s × scan(%s), inner=%d)", outer.describe(p.env), innerRD.Name, innerN)
		b.root = func(tx *txn.Txn) (Rows, error) {
			return p.openNL(tx, b, outer, innerRD, q)
		}
	}
	return nil
}

type probeSpec struct {
	attID    core.AttID
	instance int
	est      core.CostEstimate
	// viaSM probes the inner storage method's own key order (no
	// attachment): each outer join value opens a keyed range scan.
	viaSM bool
}

// --- executors ---

// openAccess opens a single-table cursor over the chosen access path,
// registered with b for per-operator execution counters.
func (p *Planner) openAccess(tx *txn.Txn, b *Bound, a *access, fields []int) (Rows, error) {
	rows, err := p.openAccessRaw(tx, a, fields)
	if err != nil {
		return nil, err
	}
	return b.track(tx, a.describe(p.env), rows), nil
}

func (p *Planner) openAccessRaw(tx *txn.Txn, a *access, fields []int) (Rows, error) {
	rel, err := p.env.OpenRelation(a.rd)
	if err != nil {
		return nil, err
	}
	if a.useAtt == 0 {
		scan, err := rel.OpenScan(tx, core.ScanOptions{
			Start: a.start, End: a.end, Filter: a.pushdown, Fields: fields,
		})
		if err != nil {
			return nil, err
		}
		return scanRows{scan: scan}, nil
	}
	inst, err := p.env.AttachmentInstance(a.rd, a.useAtt)
	if err != nil {
		return nil, err
	}
	// Direct-by-key paths (hash indexes) cannot scan: probe, then fetch.
	// The capability is declared (core.DirectOnlyPath), not discovered by
	// opening a throwaway scan — the old probe-open leaked the scan (and
	// its subscription) whenever the path could scan after all.
	if dop, ok := inst.(core.DirectOnlyPath); ok && dop.DirectOnly() {
		keys, lerr := rel.LookupAccess(tx, a.useAtt, a.instance, a.start)
		if lerr != nil {
			return nil, lerr
		}
		return &fetchRows{tx: tx, rel: rel, keys: keys, filter: a.pushdown, fields: fields}, nil
	}
	scan, err := rel.OpenAccessScan(tx, a.useAtt, a.instance, core.ScanOptions{Start: a.start, End: a.end})
	if err != nil {
		return nil, err
	}
	return &indexFetchRows{tx: tx, rel: rel, scan: scan, filter: a.pushdown, fields: fields}, nil
}

// scanRows adapts a storage-method scan.
type scanRows struct{ scan core.Scan }

func (r scanRows) Next() (types.Record, bool, error) {
	_, rec, ok, err := r.scan.Next()
	return rec, ok, err
}

func (r scanRows) Close() error { return r.scan.Close() }

// indexFetchRows drives an access-path scan and fetches each record
// directly via the storage method (tuple at a time).
type indexFetchRows struct {
	tx     *txn.Txn
	rel    *core.Relation
	scan   core.Scan
	filter *expr.Expr
	fields []int
}

func (r *indexFetchRows) Next() (types.Record, bool, error) {
	for {
		recKey, _, ok, err := r.scan.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		rec, err := r.rel.Fetch(r.tx, recKey, r.fields, r.filter)
		if err == core.ErrFiltered {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		return rec, true, nil
	}
}

func (r *indexFetchRows) Close() error { return r.scan.Close() }

// fetchRows fetches a fixed key list (hash-probe results).
type fetchRows struct {
	tx     *txn.Txn
	rel    *core.Relation
	keys   []types.Key
	filter *expr.Expr
	fields []int
}

func (r *fetchRows) Next() (types.Record, bool, error) {
	for len(r.keys) > 0 {
		key := r.keys[0]
		r.keys = r.keys[1:]
		rec, err := r.rel.Fetch(r.tx, key, r.fields, r.filter)
		if err == core.ErrFiltered {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		return rec, true, nil
	}
	return nil, false, nil
}

func (r *fetchRows) Close() error { return nil }

// openNL opens a naive nested-loop join: the inner relation is re-scanned
// for every outer record (the tuple-at-a-time call volume of E2).
func (p *Planner) openNL(tx *txn.Txn, b *Bound, outer *access, innerRD *core.RelDesc, q Query) (Rows, error) {
	outerRows, err := p.openAccess(tx, b, outer, nil)
	if err != nil {
		return nil, err
	}
	innerRel, err := p.env.OpenRelation(innerRD)
	if err != nil {
		return nil, err
	}
	return b.track(tx, fmt.Sprintf("nestedloop(%s)", innerRD.Name), &nlRows{
		p: p, tx: tx, q: q, outer: outerRows, innerRel: innerRel,
	}), nil
}

type nlRows struct {
	p        *Planner
	tx       *txn.Txn
	q        Query
	outer    Rows
	innerRel *core.Relation

	curOuter  types.Record
	innerScan core.Scan
}

func (r *nlRows) Next() (types.Record, bool, error) {
	j := r.q.Join
	for {
		if r.curOuter == nil {
			rec, ok, err := r.outer.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
			r.curOuter = rec
			filter := expr.And(
				expr.Eq(expr.Field(j.InnerCol), expr.Const(rec[j.OuterCol])),
				j.Filter,
			)
			scan, err := r.innerRel.OpenScan(r.tx, core.ScanOptions{Filter: filter, Fields: j.Fields})
			if err != nil {
				return nil, false, err
			}
			r.innerScan = scan
		}
		_, inner, ok, err := r.innerScan.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			r.innerScan.Close()
			r.curOuter, r.innerScan = nil, nil
			continue
		}
		return joinRecords(r.curOuter, r.q.Fields, inner), true, nil
	}
}

func (r *nlRows) Close() error {
	if r.innerScan != nil {
		r.innerScan.Close()
	}
	return r.outer.Close()
}

// joinRecords projects the outer record and appends the (already
// projected) inner record.
func joinRecords(outer types.Record, outerFields []int, inner types.Record) types.Record {
	var out types.Record
	if outerFields != nil {
		out = outer.Project(outerFields)
	} else {
		out = append(types.Record(nil), outer...)
	}
	return append(out, inner...)
}

// openIndexNL opens an index nested-loop join probing the inner access
// path with each outer join value.
func (p *Planner) openIndexNL(tx *txn.Txn, b *Bound, outer *access, innerRD *core.RelDesc, probe probeSpec, q Query) (Rows, error) {
	outerRows, err := p.openAccess(tx, b, outer, nil)
	if err != nil {
		return nil, err
	}
	innerRel, err := p.env.OpenRelation(innerRD)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("probe(%s via sm-key)", innerRD.Name)
	if !probe.viaSM {
		name = fmt.Sprintf("probe(%s via %s #%d)",
			innerRD.Name, p.env.Reg.AttachmentOps(probe.attID).Name, probe.instance)
	}
	return b.track(tx, name, &indexNLRows{
		tx: tx, q: q, outer: outerRows, innerRel: innerRel, probe: probe,
	}), nil
}

type indexNLRows struct {
	tx       *txn.Txn
	q        Query
	outer    Rows
	innerRel *core.Relation
	probe    probeSpec

	curOuter  types.Record
	pending   []types.Key
	innerScan core.Scan // viaSM mode: keyed range scan for the current outer
}

func (r *indexNLRows) Next() (types.Record, bool, error) {
	if r.probe.viaSM {
		return r.nextViaSM()
	}
	j := r.q.Join
	for {
		if r.curOuter == nil {
			rec, ok, err := r.outer.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
			r.curOuter = rec
			keys, err := r.innerRel.LookupAccess(r.tx, r.probe.attID, r.probe.instance,
				types.EncodeKeyValues(rec[j.OuterCol]))
			if err != nil {
				return nil, false, err
			}
			r.pending = keys
		}
		if len(r.pending) == 0 {
			r.curOuter = nil
			continue
		}
		key := r.pending[0]
		r.pending = r.pending[1:]
		inner, err := r.innerRel.Fetch(r.tx, key, j.Fields, j.Filter)
		if err == core.ErrFiltered {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		return joinRecords(r.curOuter, r.q.Fields, inner), true, nil
	}
}

// nextViaSM probes the inner storage method's own key order: each outer
// join value bounds a keyed range scan [enc(v), succ(enc(v))). The explicit
// equality in the filter guards prefix matches when the inner record key
// extends beyond the join column.
func (r *indexNLRows) nextViaSM() (types.Record, bool, error) {
	j := r.q.Join
	for {
		if r.innerScan == nil {
			rec, ok, err := r.outer.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
			kv := rec[j.OuterCol]
			if kv.IsNull() {
				continue // NULL never equi-joins
			}
			r.curOuter = rec
			start := types.EncodeKeyValues(kv)
			filter := expr.And(expr.Eq(expr.Field(j.InnerCol), expr.Const(kv)), j.Filter)
			scan, err := r.innerRel.OpenScan(r.tx, core.ScanOptions{
				Start: start, End: smutil.PrefixSuccessor(start), Filter: filter, Fields: j.Fields,
			})
			if err != nil {
				return nil, false, err
			}
			r.innerScan = scan
		}
		_, inner, ok, err := r.innerScan.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			r.innerScan.Close()
			r.innerScan, r.curOuter = nil, nil
			continue
		}
		return joinRecords(r.curOuter, r.q.Fields, inner), true, nil
	}
}

func (r *indexNLRows) Close() error {
	if r.innerScan != nil {
		r.innerScan.Close()
	}
	return r.outer.Close()
}

// openJoinIndex executes the join by enumerating the join index's matched
// record-key pairs and fetching both sides directly. The attachment is
// addressed structurally (any attachment exposing PairKeys qualifies), so
// the planner stays decoupled from the concrete join-index package.
func (p *Planner) openJoinIndex(tx *txn.Txn, b *Bound, outerRD, innerRD *core.RelDesc, q Query) (Rows, error) {
	inst, err := p.env.AttachmentInstance(outerRD, core.AttJoin)
	if err != nil {
		return nil, err
	}
	lister, ok := inst.(interface {
		PairKeys(name string) ([][2]types.Key, error)
	})
	if !ok {
		return nil, fmt.Errorf("plan: join index attachment does not enumerate pairs")
	}
	pairs, err := lister.PairKeys(q.Join.JoinIndex)
	if err != nil {
		return nil, err
	}
	outerRel, err := p.env.OpenRelation(outerRD)
	if err != nil {
		return nil, err
	}
	innerRel, err := p.env.OpenRelation(innerRD)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("joinindex(%s ⋈ %s)", outerRD.Name, innerRD.Name)
	return b.track(tx, name, &joinIndexRows{tx: tx, q: q, outerRel: outerRel, innerRel: innerRel, pairs: pairs}), nil
}

type joinIndexRows struct {
	tx       *txn.Txn
	q        Query
	outerRel *core.Relation
	innerRel *core.Relation
	pairs    [][2]types.Key
}

func (r *joinIndexRows) Next() (types.Record, bool, error) {
	for len(r.pairs) > 0 {
		pair := r.pairs[0]
		r.pairs = r.pairs[1:]
		outer, err := r.outerRel.Fetch(r.tx, pair[0], nil, r.q.Filter)
		if err == core.ErrFiltered {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		inner, err := r.innerRel.Fetch(r.tx, pair[1], r.q.Join.Fields, r.q.Join.Filter)
		if err == core.ErrFiltered {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		return joinRecords(outer, r.q.Fields, inner), true, nil
	}
	return nil, false, nil
}

func (r *joinIndexRows) Close() error { return nil }

// Collect drains rows into a slice (test and example convenience).
func Collect(rows Rows, err error) ([]types.Record, error) {
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []types.Record
	for {
		rec, ok, err := rows.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}
