package plan

// White-box assertion of the Rows contract on the join cursors: Next must
// return ok=false whenever it returns an error. The nested-loop cursors
// used to forward the outer cursor's ok flag alongside its error, handing
// callers (nil, true, err) — a violation that makes ok-first callers
// dereference a nil record.

import (
	"errors"
	"testing"

	"dmx/internal/types"
)

// erringRows yields ok=true together with an error, the worst-shaped
// upstream answer a cursor may have to normalize.
type erringRows struct{}

func (erringRows) Next() (types.Record, bool, error) {
	return nil, true, errors.New("outer cursor failed")
}
func (erringRows) Close() error { return nil }

func TestJoinCursorsNormalizeOuterError(t *testing.T) {
	j := &JoinSpec{}
	cursors := map[string]Rows{
		"nl":            &nlRows{q: Query{Join: j}, outer: erringRows{}},
		"indexnl":       &indexNLRows{q: Query{Join: j}, outer: erringRows{}},
		"indexnl-smkey": &indexNLRows{q: Query{Join: j}, outer: erringRows{}, probe: probeSpec{viaSM: true}},
		"hash":          &hashJoinRows{q: Query{Join: j}, outer: erringRows{}},
	}
	for name, r := range cursors {
		rec, ok, err := r.Next()
		if err == nil {
			t.Fatalf("%s: want the outer error propagated", name)
		}
		if ok {
			t.Errorf("%s: Next returned ok=true alongside err=%v — violates the Rows contract", name, err)
		}
		if rec != nil {
			t.Errorf("%s: Next returned a record alongside an error", name)
		}
	}
}
