package plan

import (
	"fmt"
	"strings"
	"time"

	"dmx/internal/types"
)

// OperatorStats counts one operator's work during the most recent
// execution of a bound plan: cursor calls, records produced, and wall
// time spent inside the operator (including its children).
type OperatorStats struct {
	Name      string `json:"name"`
	Calls     int64  `json:"calls"`
	Rows      int64  `json:"rows"`
	TimeNanos int64  `json:"time_nanos"`
}

// track registers a fresh stats slot for an operator opened by the
// current execution and returns the counting cursor. Bound plans are
// goroutine-confined (like the transactions that run them), so plain
// counters suffice.
func (b *Bound) track(name string, r Rows) Rows {
	st := &OperatorStats{Name: name}
	b.stats = append(b.stats, st)
	return &countedRows{inner: r, st: st}
}

// Stats returns the per-operator counters recorded by the most recent
// Execute, in the order the operators were opened (join children before
// their parent). The slice is a copy.
func (b *Bound) Stats() []OperatorStats {
	out := make([]OperatorStats, len(b.stats))
	for i, st := range b.stats {
		out[i] = *st
	}
	return out
}

// ExplainAnalyze renders the plan description followed by the
// per-operator counters of the most recent execution.
func (b *Bound) ExplainAnalyze() string {
	var sb strings.Builder
	sb.WriteString(b.explain)
	for _, st := range b.stats {
		fmt.Fprintf(&sb, "\n  %s: calls=%d rows=%d time=%s",
			st.Name, st.Calls, st.Rows, time.Duration(st.TimeNanos))
	}
	return sb.String()
}

// countedRows wraps a cursor, charging each Next to an OperatorStats.
type countedRows struct {
	inner Rows
	st    *OperatorStats
}

func (c *countedRows) Next() (types.Record, bool, error) {
	start := time.Now()
	rec, ok, err := c.inner.Next()
	c.st.Calls++
	if ok {
		c.st.Rows++
	}
	c.st.TimeNanos += time.Since(start).Nanoseconds()
	return rec, ok, err
}

func (c *countedRows) Close() error { return c.inner.Close() }
