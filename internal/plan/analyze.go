package plan

import (
	"fmt"
	"strings"
	"time"

	"dmx/internal/trace"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// OperatorStats counts one operator's work during the most recent
// execution of a bound plan: cursor calls, records produced, and wall
// time spent inside the operator (including its children).
type OperatorStats struct {
	Name      string `json:"name"`
	Calls     int64  `json:"calls"`
	Rows      int64  `json:"rows"`
	TimeNanos int64  `json:"time_nanos"`
}

// track registers a fresh stats slot for an operator opened by the
// current execution and returns the counting cursor. Bound plans are
// goroutine-confined (like the transactions that run them), so plain
// counters suffice.
//
// In a detailed-traced transaction the operator additionally carries a
// span. Operator cursors interleave (a join's outer and inner sides
// alternate Next calls), so the span is detached from the stack and
// re-entered around each Next: dispatch spans and events recorded during
// the call (storage-method fetches, buffer misses, lock waits) nest under
// the operator that caused them, and the span's duration is the
// operator's cumulative in-cursor time, matching its ExecStats.
func (b *Bound) track(tx *txn.Txn, name string, r Rows) Rows {
	st := &OperatorStats{Name: name}
	b.stats = append(b.stats, st)
	c := &countedRows{inner: r, st: st}
	if tr := tx.Trace(); tr.Detailed() {
		c.tr = tr
		c.span = tr.OpenChild("plan.op", name, "next")
	}
	return c
}

// Stats returns the per-operator counters recorded by the most recent
// Execute, in the order the operators were opened (join children before
// their parent). The slice is a copy.
func (b *Bound) Stats() []OperatorStats {
	out := make([]OperatorStats, len(b.stats))
	for i, st := range b.stats {
		out[i] = *st
	}
	return out
}

// ExplainAnalyze renders the plan description followed by the
// per-operator counters of the most recent execution.
func (b *Bound) ExplainAnalyze() string {
	var sb strings.Builder
	sb.WriteString(b.explain)
	for _, st := range b.stats {
		fmt.Fprintf(&sb, "\n  %s: calls=%d rows=%d time=%s",
			st.Name, st.Calls, st.Rows, time.Duration(st.TimeNanos))
	}
	return sb.String()
}

// countedRows wraps a cursor, charging each Next to an OperatorStats and
// (when traced) attributing the call to the operator's span.
type countedRows struct {
	inner  Rows
	st     *OperatorStats
	tr     *trace.TxnTrace
	span   *trace.Span
	closed bool
}

func (c *countedRows) Next() (types.Record, bool, error) {
	prev := c.tr.Enter(c.span)
	start := time.Now()
	rec, ok, err := c.inner.Next()
	c.st.Calls++
	if ok {
		c.st.Rows++
	}
	c.st.TimeNanos += time.Since(start).Nanoseconds()
	c.tr.Exit(prev)
	return rec, ok, err
}

func (c *countedRows) Close() error {
	err := c.inner.Close()
	if !c.closed {
		c.closed = true
		c.span.EndAggregate(time.Duration(c.st.TimeNanos), err)
	}
	return err
}
