package plan_test

import (
	"encoding/binary"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/plan"
	"dmx/internal/txn"
	"dmx/internal/types"
)

// --- countscan: a scannable access path that counts opens and closes, so
// the tests can prove the planner never opens a scan it does not close. ---

const attCount core.AttID = 25

type countInst struct {
	mu     sync.Mutex
	keys   []types.Key
	opens  int
	closes int
}

func (c *countInst) OnInsert(tx *txn.Txn, key types.Key, rec types.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keys = append(c.keys, key.Clone())
	return nil
}

func (c *countInst) OnUpdate(tx *txn.Txn, oldKey, newKey types.Key, oldRec, newRec types.Record) error {
	return nil
}
func (c *countInst) OnDelete(tx *txn.Txn, key types.Key, oldRec types.Record) error { return nil }
func (c *countInst) ApplyLogged(payload []byte, undo bool) error                    { return nil }

func (c *countInst) LookupByKey(tx *txn.Txn, instance int, key types.Key) ([]types.Key, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]types.Key(nil), c.keys...), nil
}

func (c *countInst) OpenScan(tx *txn.Txn, instance int, opts core.ScanOptions) (core.Scan, error) {
	c.mu.Lock()
	c.opens++
	keys := append([]types.Key(nil), c.keys...)
	c.mu.Unlock()
	return &countScan{inst: c, keys: keys}, nil
}

func (c *countInst) EstimateCost(req core.CostRequest) core.CostEstimate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return core.CostEstimate{Usable: true, CPU: float64(len(c.keys)), Selectivity: 1}
}

func (c *countInst) InstanceCount() int { return 1 }

func (c *countInst) counts() (opens, closes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opens, c.closes
}

type countScan struct {
	inst *countInst
	keys []types.Key
	i    int
}

func (s *countScan) Next() (types.Key, types.Record, bool, error) {
	if s.i >= len(s.keys) {
		return nil, nil, false, nil
	}
	k := s.keys[s.i]
	s.i++
	return k, nil, true, nil
}

func (s *countScan) Pos() core.ScanPos {
	return binary.BigEndian.AppendUint32(nil, uint32(s.i))
}

func (s *countScan) Restore(pos core.ScanPos) error {
	s.i = int(binary.BigEndian.Uint32(pos))
	return nil
}

func (s *countScan) Close() error {
	s.inst.mu.Lock()
	s.inst.closes++
	s.inst.mu.Unlock()
	return nil
}

var countInstances = map[*core.Env]*countInst{}

func init() {
	core.RegisterAttachment(&core.AttachmentOps{
		ID: attCount, Name: "countscan",
		Create: func(env *core.Env, tx *txn.Txn, rd *core.RelDesc, prior []byte, attrs core.AttrList) ([]byte, error) {
			return []byte{1}, nil
		},
		Open: func(env *core.Env, rd *core.RelDesc) (core.AttachmentInstance, error) {
			if inst, ok := countInstances[env]; ok {
				return inst, nil
			}
			inst := &countInst{}
			countInstances[env] = inst
			return inst, nil
		},
	})
}

// TestProbeScanNotLeaked is the regression test for the planner's leaked
// probe scan: openAccessRaw used to open a throwaway attachment scan just
// to find out whether the path could scan at all, then opened the real
// (managed) scan on top — leaking the probe whenever the path was
// scannable. Every scan the attachment hands out must come back.
func TestProbeScanNotLeaked(t *testing.T) {
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "emp", empSchema(), "heap", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "emp", "countscan", nil); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelationByName("emp")
	for i := 0; i < 20; i++ {
		if _, err := r.Insert(tx, types.Record{
			types.Int(int64(i)), types.Int(int64(i % 10)), types.Float(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	q := plan.Query{Table: "emp", ForcePath: &plan.ForcedPath{Att: attCount}}
	rows, _ := runQuery(t, env, q)
	if len(rows) != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
	inst := countInstances[env]
	opens, closes := inst.counts()
	if opens != closes {
		t.Fatalf("attachment scans leaked: %d opened, %d closed", opens, closes)
	}
	if opens != 1 {
		t.Errorf("want exactly 1 scan open for one execution, got %d", opens)
	}
}

// TestSMKeyedJoinProbe is the regression test for the planner's dead
// keyed-join path: the inner storage method's estimate for the join-column
// equality was computed and then discarded, so a B-tree-organised inner
// relation with no attachments never got index nested loops.
func TestSMKeyedJoinProbe(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 30)
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "dept", deptSchema(), "btree", core.AttrList{"key": "dno"}); err != nil {
		t.Fatal(err)
	}
	d, _ := env.OpenRelationByName("dept")
	names := []string{"eng", "ops", "hr", "fin", "mkt", "it", "qa", "rd", "pr", "biz"}
	for i, n := range names {
		if _, err := d.Insert(tx, types.Record{types.Int(int64(i)), types.Str(n)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	q := plan.Query{
		Table:     "emp",
		Join:      &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
		ForceJoin: "indexnl",
	}
	rows, b := runQuery(t, env, q)
	if !strings.Contains(b.Explain(), "sm-key") {
		t.Fatalf("explain = %s, want the storage method's keyed path", b.Explain())
	}
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r[3].S != names[r[1].AsInt()] {
			t.Fatalf("join mismatch: %v", r)
		}
	}

	nq := q
	nq.ForceJoin = "nl"
	nlrows, _ := runQuery(t, env, nq)
	if got, want := multiset(rows), multiset(nlrows); !reflect.DeepEqual(got, want) {
		t.Fatalf("sm-key probe rows diverge from nested loop:\n probe=%v\n    nl=%v", got, want)
	}
}

// TestSMKeyedJoinProbeChosen: with a large, statistics-covered inner side
// the cost model picks the storage method's keyed path on its own.
func TestSMKeyedJoinProbeChosen(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 30)
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "dept", deptSchema(), "btree", core.AttrList{"key": "dno"}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "dept", "stats", nil); err != nil {
		t.Fatal(err)
	}
	d, _ := env.OpenRelationByName("dept")
	for i := 0; i < 1000; i++ {
		if _, err := d.Insert(tx, types.Record{types.Int(int64(i)), types.Str("d")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	q := plan.Query{
		Table: "emp",
		Join:  &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
	}
	rows, b := runQuery(t, env, q)
	if !strings.HasPrefix(b.Explain(), "indexNL(") || !strings.Contains(b.Explain(), "sm-key") {
		t.Fatalf("explain = %s, want indexNL via sm-key", b.Explain())
	}
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
}

// TestParallelScanMatchesSerial is the differential test for the
// partitioned parallel scan: across every range-partitionable storage
// method, a forced-parallel plan must return exactly the serial plan's
// multiset of rows.
func TestParallelScanMatchesSerial(t *testing.T) {
	cases := []struct {
		sm    string
		attrs core.AttrList
	}{
		{"heap", nil},
		{"memory", nil},
		{"btree", core.AttrList{"key": "eno"}},
	}
	for _, tc := range cases {
		t.Run(tc.sm, func(t *testing.T) {
			env := core.NewEnv(core.Config{})
			loadEmp(t, env, tc.sm, tc.attrs, 6000)
			q := plan.Query{
				Table:  "emp",
				Filter: expr.Lt(expr.Field(1), expr.Const(types.Int(5))),
			}
			serial := q
			serial.ForceDegree = 1
			srows, sb := runQuery(t, env, serial)
			if !strings.HasPrefix(sb.Explain(), "scan(") {
				t.Fatalf("serial explain = %s", sb.Explain())
			}
			par := q
			par.ForceDegree = 4
			prows, pb := runQuery(t, env, par)
			if !strings.HasPrefix(pb.Explain(), "pscan(") {
				t.Fatalf("parallel explain = %s", pb.Explain())
			}
			if got, want := multiset(prows), multiset(srows); !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel scan diverges from serial: %d vs %d rows", len(prows), len(srows))
			}
		})
	}
}

// TestParallelScanOrdered: the exchange drains key-ordered partitions
// sequentially, so a parallel scan over a key-organised store still
// delivers the requested order.
func TestParallelScanOrdered(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "btree", core.AttrList{"key": "eno"}, 6000)
	q := plan.Query{Table: "emp", OrderBy: []int{0}, ForceDegree: 4}
	rows, b := runQuery(t, env, q)
	if !b.Ordered() {
		t.Fatalf("Ordered() = false; explain = %s", b.Explain())
	}
	if !strings.HasPrefix(b.Explain(), "pscan(") || !strings.Contains(b.Explain(), "[ordered]") {
		t.Fatalf("explain = %s", b.Explain())
	}
	if len(rows) != 6000 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r[0].AsInt() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, r)
		}
	}
}

// TestParallelHashJoinMatchesSerial: the partitioned hash join returns the
// nested loop's exact multiset.
func TestParallelHashJoinMatchesSerial(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 1200)
	tx := env.Begin()
	// memory (tree-backed) partitions the build side; dno repeats every 10
	// rows, so the hash table must carry duplicate join keys.
	if _, err := env.CreateRelation(tx, "dept", deptSchema(), "memory", nil); err != nil {
		t.Fatal(err)
	}
	d, _ := env.OpenRelationByName("dept")
	for i := 0; i < 1200; i++ {
		if _, err := d.Insert(tx, types.Record{types.Int(int64(i % 10)), types.Str("d")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	q := plan.Query{
		Table:  "emp",
		Filter: expr.Lt(expr.Field(0), expr.Const(types.Int(50))),
		Fields: []int{0, 1},
		Join:   &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
	}
	hq := q
	hq.ForceJoin, hq.ForceDegree = "hash", 4
	hrows, hb := runQuery(t, env, hq)
	if !strings.HasPrefix(hb.Explain(), "hash(") {
		t.Fatalf("explain = %s", hb.Explain())
	}
	nq := q
	nq.ForceJoin = "nl"
	nrows, _ := runQuery(t, env, nq)
	if got, want := multiset(hrows), multiset(nrows); !reflect.DeepEqual(got, want) {
		t.Fatalf("hash join diverges from nested loop: %d vs %d rows", len(hrows), len(nrows))
	}
}

// TestDuplicateKeyJoinWaysAgree: many-to-many join keys (duplicates on
// both sides) through every join strategy.
func TestDuplicateKeyJoinWaysAgree(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 100) // dno = i%10: ten rows per dno
	addDept(t, env, true)
	q := plan.Query{
		Table: "emp",
		Join:  &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
	}
	var base []string
	for _, strat := range []string{"nl", "indexnl", "hash"} {
		fq := q
		fq.ForceJoin = strat
		rows, _ := runQuery(t, env, fq)
		if len(rows) != 100 {
			t.Fatalf("%s: rows = %d", strat, len(rows))
		}
		ms := multiset(rows)
		if base == nil {
			base = ms
		} else if !reflect.DeepEqual(ms, base) {
			t.Fatalf("%s diverges from nl", strat)
		}
	}
}

// TestExchangeEarlyClose closes a parallel scan mid-stream, repeatedly:
// the workers must stop, the partition scans must close, and nothing may
// deadlock or race (the make-par soak runs this under -race).
func TestExchangeEarlyClose(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 8000)
	p := plan.New(env)
	for _, ordered := range []bool{false, true} {
		q := plan.Query{Table: "emp", ForceDegree: 8}
		if ordered {
			q.OrderBy = []int{0}
		}
		b, err := p.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			tx := env.Begin()
			rows, err := b.Execute(tx)
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n < 5; n++ {
				if _, ok, err := rows.Next(); err != nil || !ok {
					t.Fatalf("next: ok=%v err=%v", ok, err)
				}
			}
			if err := rows.Close(); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestStatsDrivenAccessChoice is the acceptance test for stats-fed
// planning: on a histogram-covered column, a selective range conjunct
// picks the index while an unselective one picks the (parallel) scan.
// With the textbook one-third range guess both would pick the index.
func TestStatsDrivenAccessChoice(t *testing.T) {
	// The automatic degree is capped by GOMAXPROCS; pin it so the choice
	// under test is deterministic on single-core runners.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	env := core.NewEnv(core.Config{})
	tx := env.Begin()
	if _, err := env.CreateRelation(tx, "emp", empSchema(), "heap", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "emp", "stats", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := env.CreateAttachment(tx, "emp", "btree",
		core.AttrList{"name": "bysal", "on": "salary"}); err != nil {
		t.Fatal(err)
	}
	r, _ := env.OpenRelationByName("emp")
	for i := 0; i < 10000; i++ {
		if _, err := r.Insert(tx, types.Record{
			types.Int(int64(i)), types.Int(int64(i % 10)), types.Float(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	selective := plan.Query{Table: "emp",
		Filter: expr.Lt(expr.Field(2), expr.Const(types.Float(10)))}
	rows, b := runQuery(t, env, selective)
	if !strings.Contains(b.Explain(), "btree") {
		t.Fatalf("selective conjunct: explain = %s, want the btree index", b.Explain())
	}
	if len(rows) != 10 {
		t.Fatalf("selective rows = %d", len(rows))
	}

	unselective := plan.Query{Table: "emp",
		Filter: expr.Lt(expr.Field(2), expr.Const(types.Float(9000)))}
	rows, b = runQuery(t, env, unselective)
	if !strings.HasPrefix(b.Explain(), "pscan(") {
		t.Fatalf("unselective conjunct: explain = %s, want a parallel scan", b.Explain())
	}
	if len(rows) != 9000 {
		t.Fatalf("unselective rows = %d", len(rows))
	}
}

// TestPlanObsCounters: parallel plans feed the observability engine.
func TestPlanObsCounters(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 3000)
	q := plan.Query{Table: "emp", ForceDegree: 4}
	if rows, _ := runQuery(t, env, q); len(rows) != 3000 {
		t.Fatalf("rows = %d", len(rows))
	}
	addDept(t, env, false)
	jq := plan.Query{
		Table:     "emp",
		Filter:    expr.Lt(expr.Field(0), expr.Const(types.Int(10))),
		Join:      &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}},
		ForceJoin: "hash",
	}
	if rows, _ := runQuery(t, env, jq); len(rows) != 10 {
		t.Fatalf("join rows = %d", len(rows))
	}

	snap := env.Obs.Snapshot()
	if snap.Plan.ParallelScans < 1 {
		t.Errorf("parallel_scans = %d, want ≥1", snap.Plan.ParallelScans)
	}
	if snap.Plan.HashJoins < 1 {
		t.Errorf("hash_joins = %d, want ≥1", snap.Plan.HashJoins)
	}
	if snap.Plan.WorkerRows < 3000 {
		t.Errorf("worker_rows = %d, want ≥3000", snap.Plan.WorkerRows)
	}
	if snap.Plan.WorkersMax < 2 {
		t.Errorf("workers_max = %d, want ≥2", snap.Plan.WorkersMax)
	}
	if snap.Plan.Workers != 0 {
		t.Errorf("workers = %d after all plans closed, want 0", snap.Plan.Workers)
	}
}

// TestForceJoinUnusable: forcing a strategy the query cannot run reports
// ErrForcedUnusable instead of silently degrading.
func TestForceJoinUnusable(t *testing.T) {
	env := core.NewEnv(core.Config{})
	loadEmp(t, env, "memory", nil, 10)
	addDept(t, env, false) // no keyed path on dept
	q := plan.Query{
		Table:     "emp",
		Join:      &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0},
		ForceJoin: "indexnl",
	}
	if _, err := plan.New(env).Plan(q); !errors.Is(err, plan.ErrForcedUnusable) {
		t.Fatalf("err = %v, want ErrForcedUnusable", err)
	}
}
