package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond) // bucket 0 (< 256ns)
	h.Observe(300 * time.Nanosecond) // bucket 1 (< 512ns)
	h.Observe(time.Millisecond)      // well past the first buckets
	h.Observe(time.Hour)             // overflow bucket

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 {
		t.Fatalf("low buckets = %d, %d", s.Buckets[0], s.Buckets[1])
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d", s.Buckets[NumBuckets-1])
	}
	if s.MaxNanos != time.Hour.Nanoseconds() {
		t.Fatalf("max = %d", s.MaxNanos)
	}
	if got := s.Mean(); got <= 0 {
		t.Fatalf("mean = %v", got)
	}
	if q := s.Quantile(0.5); q <= 0 {
		t.Fatalf("p50 = %v", q)
	}
	if q := s.Quantile(1.0); q != time.Duration(s.MaxNanos) {
		t.Fatalf("p100 = %v, want max %v", q, time.Duration(s.MaxNanos))
	}
}

func TestBucketUpperMonotone(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i < NumBuckets-1; i++ {
		u := BucketUpper(i)
		if u <= prev {
			t.Fatalf("bucket %d upper %v not increasing past %v", i, u, prev)
		}
		prev = u
	}
	if BucketUpper(NumBuckets-1) != 0 {
		t.Fatal("overflow bucket should report no bound")
	}
}

func TestVectorObserveAndSnapshot(t *testing.T) {
	e := NewEngine()
	e.SM.Observe(3, OpInsert, time.Microsecond, false)
	e.SM.Observe(3, OpInsert, 2*time.Microsecond, true)
	e.SM.Observe(5, OpScan, time.Microsecond, false)
	e.Att.Observe(2, OpUpdate, time.Microsecond, false)
	e.AttVetoes[2].Inc()
	// Out-of-range ids are dropped, not panics.
	e.SM.Observe(-1, OpInsert, 0, false)
	e.SM.Observe(MaxExt, OpInsert, 0, false)
	e.SM.Observe(0, NumOps, 0, false)

	snap := e.Snapshot()
	if len(snap.SM) != 2 {
		t.Fatalf("SM entries = %d, want 2", len(snap.SM))
	}
	if snap.SM[0].ID != 3 || snap.SM[0].Ops[0].Count != 2 || snap.SM[0].Ops[0].Errors != 1 {
		t.Fatalf("SM[3] = %+v", snap.SM[0])
	}
	if len(snap.Att) != 1 || snap.Att[0].ID != 2 || snap.Att[0].Vetoes != 1 {
		t.Fatalf("Att = %+v", snap.Att)
	}
}

func TestSnapshotJSON(t *testing.T) {
	e := NewEngine()
	e.SM.Observe(1, OpInsert, time.Microsecond, false)
	e.Lock.Requests.Inc()
	e.Buffer.Hits.Add(3)
	e.Buffer.Misses.Inc()
	data, err := json.Marshal(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Buffer.HitRatio != 0.75 {
		t.Fatalf("hit ratio = %v", back.Buffer.HitRatio)
	}
	if len(back.SM) != 1 || back.SM[0].Ops[0].Op != "insert" {
		t.Fatalf("round trip lost data: %s", data)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	g.Inc()
	if g.Load() != 2 || g.Max() != 2 {
		t.Fatalf("load=%d max=%d", g.Load(), g.Max())
	}
}

// TestGaugeAddHighWaterMark covers the batched-delta path: positive
// deltas advance the mark to the post-add value, negative deltas never
// move it.
func TestGaugeAddHighWaterMark(t *testing.T) {
	var g Gauge
	g.Add(100)
	g.Add(-40)
	g.Add(30)
	if g.Load() != 90 || g.Max() != 100 {
		t.Fatalf("load=%d max=%d, want 90/100", g.Load(), g.Max())
	}
	g.Add(20)
	if g.Load() != 110 || g.Max() != 110 {
		t.Fatalf("load=%d max=%d, want 110/110", g.Load(), g.Max())
	}
	g.Add(-110)
	if g.Load() != 0 || g.Max() != 110 {
		t.Fatalf("load=%d max=%d, want 0/110", g.Load(), g.Max())
	}
}

// TestGaugeConcurrentHighWaterMark is the lost-max regression test: all
// workers raise the gauge to its peak before any lowers it, so the exact
// peak is known and a racy high-water update would under-report it.
func TestGaugeConcurrentHighWaterMark(t *testing.T) {
	const workers = 16
	for round := 0; round < 200; round++ {
		var g Gauge
		var up, down sync.WaitGroup
		up.Add(workers)
		down.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				g.Inc()
				up.Done()
				up.Wait() // barrier: every Inc lands before any Dec
				g.Dec()
				down.Done()
			}()
		}
		down.Wait()
		if m := g.Max(); m != workers {
			t.Fatalf("round %d: max = %d, want %d", round, m, workers)
		}
		if v := g.Load(); v != 0 {
			t.Fatalf("round %d: load = %d, want 0", round, v)
		}
	}
}

// TestGaugeMaxNeverTrailsLoad locks in the Max >= Load invariant: the
// value add and the mark CAS are separate atomics, and a reader landing
// between them must not see the mark below the live value.
func TestGaugeMaxNeverTrailsLoad(t *testing.T) {
	var g Gauge
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					g.Inc()
					g.Dec()
				}
			}
		}()
	}
	for i := 0; i < 100000; i++ {
		// Load then Max: the gauge can only have grown in between, which
		// never breaks the invariant, while the reverse order would race
		// benignly and mask a real regression.
		v := g.Load()
		if m := g.Max(); m < v {
			close(stop)
			wg.Wait()
			t.Fatalf("max %d < load %d", m, v)
		}
	}
	close(stop)
	wg.Wait()
}

func TestQuantileEdgeCases(t *testing.T) {
	empty := HistogramSnapshot{}

	var single Histogram
	single.Observe(300 * time.Nanosecond) // bucket 1, upper bound 512ns
	singleSnap := single.Snapshot()

	var overflowOnly Histogram
	overflowOnly.Observe(time.Hour) // overflow bucket only
	overflowSnap := overflowOnly.Snapshot()

	var three Histogram
	three.Observe(100 * time.Nanosecond) // bucket 0, upper 256ns
	three.Observe(300 * time.Nanosecond) // bucket 1, upper 512ns
	three.Observe(700 * time.Nanosecond) // bucket 2, upper 1024ns
	threeSnap := three.Snapshot()

	cases := []struct {
		name string
		s    HistogramSnapshot
		q    float64
		want time.Duration
	}{
		{"empty q=0", empty, 0, 0},
		{"empty q=0.5", empty, 0.5, 0},
		{"empty q=1", empty, 1, 0},
		{"single q=0", singleSnap, 0, 512 * time.Nanosecond},
		{"single q=0.5", singleSnap, 0.5, 512 * time.Nanosecond},
		{"single q=1", singleSnap, 1, 512 * time.Nanosecond},
		{"overflow q=0.5", overflowSnap, 0.5, time.Hour},
		{"overflow q=1", overflowSnap, 1, time.Hour},
		{"three q=0", threeSnap, 0, 256 * time.Nanosecond},
		// ceil(0.5*3) = 2nd observation, not the 1st
		{"three q=0.5", threeSnap, 0.5, 512 * time.Nanosecond},
		{"three q=0.34", threeSnap, 0.34, 512 * time.Nanosecond},
		{"three q=0.33", threeSnap, 0.33, 256 * time.Nanosecond},
		{"three q=1", threeSnap, 1, 1024 * time.Nanosecond},
		// out-of-range q clamps instead of walking off the buckets
		{"three q=-1", threeSnap, -1, 256 * time.Nanosecond},
		{"three q=2", threeSnap, 2, 1024 * time.Nanosecond},
	}
	for _, c := range cases {
		if got := c.s.Quantile(c.q); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// TestConcurrentRecording hammers every metric type from many goroutines
// while snapshots are taken; run under -race it proves the layer needs no
// external synchronisation.
func TestConcurrentRecording(t *testing.T) {
	e := NewEngine()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.SM.Observe(w%MaxExt, Op(i)%NumOps, time.Duration(i), i%7 == 0)
				e.Att.Observe((w+1)%MaxExt, OpInsert, time.Duration(i), false)
				e.Lock.Requests.Inc()
				e.Lock.Queue.Inc()
				e.Lock.Queue.Dec()
				e.WAL.AppendBytes.Add(int64(i))
				e.Buffer.Hits.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				e.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	snap := e.Snapshot()
	if snap.Lock.Requests != workers*per {
		t.Fatalf("requests = %d, want %d", snap.Lock.Requests, workers*per)
	}
	if snap.Buffer.Hits != workers*per {
		t.Fatalf("hits = %d", snap.Buffer.Hits)
	}
}
