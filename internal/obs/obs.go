// Package obs is the engine-wide observability layer.
//
// The extension architecture funnels every storage-method and attachment
// call through a handful of dispatch points, which makes uniform
// instrumentation cheap: metrics are kept in vectors indexed by the same
// small-integer extension identifiers that index the procedure vectors,
// so recording a sample is an array index plus a few atomic adds — no
// locks, no allocation, safe under any concurrency.
//
// The package deliberately knows nothing about the engine: the common
// services (core dispatch, lock manager, recovery log, buffer pool) each
// hold a pointer into a shared Engine and record into it; Engine.Snapshot
// materialises everything into plain JSON-marshalable structs.
package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// MaxExt is the width of the per-extension metric vectors. It matches the
// procedure-vector width (core.MaxStorageMethods / MaxAttachmentTypes).
const MaxExt = 32

// Op identifies a generic operation for per-operation metric keying.
type Op uint8

// Generic operations, mirroring the dispatch points of the architecture.
const (
	OpInsert Op = iota
	OpUpdate
	OpDelete
	OpFetch  // direct-by-key access
	OpScan   // key-sequential access opened
	OpLookup // access-path key lookup
	NumOps
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpFetch:
		return "fetch"
	case OpScan:
		return "scan"
	case OpLookup:
		return "lookup"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Counter is a lock-free monotonic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a lock-free up/down gauge that also tracks its high-water mark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Inc raises the gauge, updating the high-water mark. The mark is
// maintained by a CAS loop over the value returned by the counter add, so
// concurrent Incs cannot lose a peak: every thread retries until the mark
// is at least the value it personally observed, and the mark ends at the
// largest value any thread saw.
func (g *Gauge) Inc() {
	n := g.v.Add(1)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Dec lowers the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add moves the gauge by d (either direction), maintaining the high-water
// mark with the same CAS loop as Inc when the move raises the value.
func (g *Gauge) Add(d int64) {
	n := g.v.Add(d)
	if d <= 0 {
		return
	}
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-water mark. The value and the mark are two atomics,
// so between a thread's Add and its CAS there is a window where the stored
// mark trails the live value; the current value is itself a lower bound on
// the true peak, so Max folds it in rather than reporting Max < Load.
func (g *Gauge) Max() int64 {
	m := g.max.Load()
	if v := g.v.Load(); v > m {
		return v
	}
	return m
}

// NumBuckets is the number of latency histogram buckets. Bucket i counts
// observations below BucketUpper(i); the last bucket is the overflow.
const NumBuckets = 22

// bucketBase is the upper bound of bucket 0 in nanoseconds; bounds double
// per bucket (256ns, 512ns, ... ~268ms), the final bucket is unbounded.
const bucketBase = 256

// BucketUpper returns the exclusive upper bound of bucket i (the last
// bucket has no bound and reports a zero duration).
func BucketUpper(i int) time.Duration {
	if i >= NumBuckets-1 {
		return 0
	}
	return time.Duration(bucketBase << uint(i))
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	n := d.Nanoseconds()
	for i := 0; i < NumBuckets-1; i++ {
		if n < int64(bucketBase<<uint(i)) {
			return i
		}
	}
	return NumBuckets - 1
}

// Histogram is a lock-free latency histogram with exponential buckets.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [NumBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n := d.Nanoseconds()
	h.count.Add(1)
	h.sum.Add(n)
	for {
		m := h.max.Load()
		if n <= m || h.max.CompareAndSwap(m, n) {
			break
		}
	}
	h.buckets[bucketFor(d)].Add(1)
}

// Snapshot materialises the histogram. Buckets are read without a global
// lock, so a snapshot taken under concurrent writes is approximate (each
// individual value is still consistent).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sum.Load(),
		MaxNanos: h.max.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a plain-struct view of a Histogram.
type HistogramSnapshot struct {
	Count    int64             `json:"count"`
	SumNanos int64             `json:"sum_ns"`
	MaxNanos int64             `json:"max_ns"`
	Buckets  [NumBuckets]int64 `json:"buckets"`
}

// Mean returns the mean observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Quantile returns an upper bound for the q-quantile from the bucket
// boundaries; the overflow bucket reports the observed maximum. q is
// clamped to [0, 1]. An empty histogram reports 0. q=0 reports the bound
// of the smallest populated bucket, q=1 the bound of the largest — so on
// a single-bucket snapshot every quantile reports that bucket's bound.
// The target rank is the ceiling of q·Count (inverse CDF): on 3 samples,
// q=0.5 means "the 2nd", not "the 1st".
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= target {
			if i == NumBuckets-1 {
				return time.Duration(s.MaxNanos)
			}
			return BucketUpper(i)
		}
	}
	return time.Duration(s.MaxNanos)
}

// OpStat is one (extension, operation) cell: call count, error count, and
// a latency histogram.
type OpStat struct {
	Count   Counter
	Errors  Counter
	Latency Histogram
}

// Observe records one dispatched call.
func (s *OpStat) Observe(d time.Duration, failed bool) {
	s.Count.Inc()
	if failed {
		s.Errors.Inc()
	}
	s.Latency.Observe(d)
}

// Vector is a per-extension-ID × per-operation stat table, indexed exactly
// like the architecture's procedure vectors.
type Vector struct {
	stats [MaxExt][NumOps]OpStat
}

// Observe records one dispatched call for extension id.
func (v *Vector) Observe(id int, op Op, d time.Duration, failed bool) {
	if id < 0 || id >= MaxExt || op >= NumOps {
		return
	}
	v.stats[id][op].Observe(d, failed)
}

// At returns the stat cell for (id, op) (nil when out of range).
func (v *Vector) At(id int, op Op) *OpStat {
	if id < 0 || id >= MaxExt || op >= NumOps {
		return nil
	}
	return &v.stats[id][op]
}

// LockStats instruments the common lock manager.
type LockStats struct {
	Requests  Counter   // Acquire and TryAcquire calls
	Waits     Counter   // requests that blocked
	WaitTime  Histogram // time spent blocked
	Deadlocks Counter   // requests refused as deadlock victims
	Queue     Gauge     // transactions currently blocked (with high-water mark)
}

// WALStats instruments the common recovery log.
type WALStats struct {
	Appends      Counter // log records written
	AppendBytes  Counter // payload bytes appended
	Syncs        Counter // backing-file fsyncs
	Rollbacks    Counter // log-driven rollbacks (veto, savepoint, abort)
	Checkpoints  Counter // completed checkpoints (snapshot + truncation)
	RedoRecords  Counter // records dispatched to redo during restart recovery
	GroupCommits Counter // commit syncs served (leader or batched follower)
	GroupBatches Counter // fsync rounds driven by the group-commit leader
	ForcedSyncs  Counter // WAL-before-data forces from the buffer pool
}

// BufferStats instruments the shared buffer pool.
type BufferStats struct {
	Hits      Counter
	Misses    Counter
	Evictions Counter
	Flushes   Counter // dirty pages written back by FlushAll
}

// MVCCStats instruments snapshot reads over versioned storage.
type MVCCStats struct {
	SnapshotReads   Counter // lock-free fetches and scans opened by snapshot transactions
	ChainWalks      Counter // version-chain walks past an invisible head
	Reconstructions Counter // record versions rebuilt from WAL records
	Pruned          Counter // chain entries dropped below the oldest-snapshot horizon
	Frozen          Counter // chains retired by checkpoint freezes
}

// LSMStats instruments the tiered-ingest (LSM) storage method: memtable
// lifecycle, run merges, and bloom-filter effectiveness. The gauges
// aggregate across every LSM relation in the environment.
type LSMStats struct {
	Flushes             Counter // memtables sealed into sorted runs
	FlushedEntries      Counter // entries moved out of memtables by flushes
	Compactions         Counter // merge rounds installed
	CompactedRuns       Counter // input runs consumed by merges
	TombstonesDropped   Counter // delete markers retired by full-depth merges
	BloomProbes         Counter // runs consulted by direct-by-key lookups
	BloomSkips          Counter // runs skipped by their bloom filter
	BloomFalsePositives Counter // bloom passes that then found no key
	MemtableBytes       Gauge   // resident memtable payload bytes (with high-water)
	Runs                Gauge   // resident sorted runs (with high-water)
}

// PlanStats instruments the query planner's parallel execution: how often
// the cost model picked a partitioned parallel scan or a hash join, and
// worker-goroutine utilization (current and high-water).
type PlanStats struct {
	ParallelScans Counter // partitioned parallel scans opened
	HashJoins     Counter // hash joins chosen over nested loops
	Workers       Gauge   // scan/build workers currently running (with high-water)
	WorkerRows    Counter // rows produced inside parallel workers
}

// TxnStats are the transaction-lifecycle rollups fed by the transaction
// manager as each transaction finishes: outcome counts by mode plus the
// engine-wide totals of the per-transaction resource ledgers.
type TxnStats struct {
	CommitsWrite    Counter // committed write transactions
	CommitsReadOnly Counter // committed read-only snapshot transactions
	Aborts          Counter // aborted transactions (incl. commit failures)
	LockWaitNanos   Counter // cumulative lock-wait time across finished txns
	WALBytes        Counter // cumulative WAL payload bytes across finished txns
	RowsRead        Counter // rows returned to finished txns
	RowsWritten     Counter // rows modified by finished txns
}

// PartStats instruments the partitioned storage method: request routing
// (single-shard point ops vs scatter-gather scans) and the two-phase
// commit protocol driving multi-shard transactions.
type PartStats struct {
	RoutedReads  Counter // point reads routed to exactly one shard
	RoutedScans  Counter // single-key scan ranges routed to one shard
	ScatterScans Counter // scans fanned out across every shard
	Prepares     Counter // shard prepare requests sent (phase one)
	Commits      Counter // shard commit decisions delivered (phase two)
	Aborts       Counter // shard abort decisions delivered
	AckLost      Counter // decision deliveries whose acknowledgement was lost
	Resolved     Counter // in-doubt shard transactions resolved at recovery
}

// Engine aggregates every component's metrics into one registry. All
// fields are recorded into concurrently without locks.
type Engine struct {
	SM        Vector // storage-method dispatch, indexed by SM identifier
	Att       Vector // attachment dispatch, indexed by attachment-type identifier
	AttVetoes [MaxExt]Counter
	Lock      LockStats
	WAL       WALStats
	Buffer    BufferStats
	MVCC      MVCCStats
	LSM       LSMStats
	Plan      PlanStats
	Txn       TxnStats
	Part      PartStats
}

// NewEngine returns a fresh engine metric registry.
func NewEngine() *Engine { return &Engine{} }

// Snapshot is the JSON-marshalable view of an Engine. Extension entries
// appear only for identifiers with recorded activity.
type Snapshot struct {
	SM     []ExtSnapshot  `json:"storage_methods"`
	Att    []ExtSnapshot  `json:"attachments"`
	Lock   LockSnapshot   `json:"lock"`
	WAL    WALSnapshot    `json:"wal"`
	Buffer BufferSnapshot `json:"buffer"`
	MVCC   MVCCSnapshot   `json:"mvcc"`
	LSM    LSMSnapshot    `json:"lsm"`
	Plan   PlanSnapshot   `json:"plan"`
	Txn    TxnSnapshot    `json:"txn"`
	Part   PartSnapshot   `json:"part"`
}

// ExtSnapshot is the per-extension view: one entry per operation with
// recorded calls. Name is filled in by the caller (the registry that maps
// identifiers to extension names lives above this package).
type ExtSnapshot struct {
	ID     int          `json:"id"`
	Name   string       `json:"name,omitempty"`
	Ops    []OpSnapshot `json:"ops"`
	Vetoes int64        `json:"vetoes,omitempty"`
}

// OpSnapshot is one (extension, operation) cell.
type OpSnapshot struct {
	Op      string            `json:"op"`
	Count   int64             `json:"count"`
	Errors  int64             `json:"errors,omitempty"`
	Latency HistogramSnapshot `json:"latency"`
}

// LockSnapshot is the lock-manager view.
type LockSnapshot struct {
	Requests      int64             `json:"requests"`
	Waits         int64             `json:"waits"`
	Deadlocks     int64             `json:"deadlocks"`
	Waiting       int64             `json:"waiting"`
	MaxQueueDepth int64             `json:"max_queue_depth"`
	WaitTime      HistogramSnapshot `json:"wait_time"`
}

// WALSnapshot is the recovery-log view. CommitsPerFsync is the group-commit
// batching ratio: commit syncs served per leader fsync round (> 1 means
// concurrent commits shared fsyncs).
type WALSnapshot struct {
	Appends         int64   `json:"appends"`
	AppendBytes     int64   `json:"append_bytes"`
	Syncs           int64   `json:"syncs"`
	Rollbacks       int64   `json:"rollbacks"`
	Checkpoints     int64   `json:"checkpoints"`
	RedoRecords     int64   `json:"redo_records"`
	GroupCommits    int64   `json:"group_commits"`
	GroupBatches    int64   `json:"group_batches"`
	ForcedSyncs     int64   `json:"forced_syncs"`
	CommitsPerFsync float64 `json:"commits_per_fsync"`
}

// MVCCSnapshot is the snapshot-read view.
type MVCCSnapshot struct {
	SnapshotReads   int64 `json:"snapshot_reads"`
	ChainWalks      int64 `json:"chain_walks"`
	Reconstructions int64 `json:"reconstructions"`
	Pruned          int64 `json:"pruned"`
	Frozen          int64 `json:"frozen"`
}

// LSMSnapshot is the tiered-ingest storage-method view. BloomSkipRatio is
// the fraction of per-run probes the filters answered without a search.
type LSMSnapshot struct {
	Flushes             int64   `json:"flushes"`
	FlushedEntries      int64   `json:"flushed_entries"`
	Compactions         int64   `json:"compactions"`
	CompactedRuns       int64   `json:"compacted_runs"`
	TombstonesDropped   int64   `json:"tombstones_dropped"`
	BloomProbes         int64   `json:"bloom_probes"`
	BloomSkips          int64   `json:"bloom_skips"`
	BloomFalsePositives int64   `json:"bloom_false_positives"`
	BloomSkipRatio      float64 `json:"bloom_skip_ratio"`
	MemtableBytes       int64   `json:"memtable_bytes"`
	MemtableBytesMax    int64   `json:"memtable_bytes_max"`
	Runs                int64   `json:"runs"`
	RunsMax             int64   `json:"runs_max"`
}

// PlanSnapshot is the parallel-execution view of the query planner.
type PlanSnapshot struct {
	ParallelScans int64 `json:"parallel_scans"`
	HashJoins     int64 `json:"hash_joins"`
	Workers       int64 `json:"workers"`
	WorkersMax    int64 `json:"workers_max"`
	WorkerRows    int64 `json:"worker_rows"`
}

// TxnSnapshot is the transaction-lifecycle view.
type TxnSnapshot struct {
	CommitsWrite    int64 `json:"commits_write"`
	CommitsReadOnly int64 `json:"commits_readonly"`
	Aborts          int64 `json:"aborts"`
	LockWaitNanos   int64 `json:"lock_wait_nanos"`
	WALBytes        int64 `json:"wal_bytes"`
	RowsRead        int64 `json:"rows_read"`
	RowsWritten     int64 `json:"rows_written"`
}

// PartSnapshot is the partitioned storage-method view.
type PartSnapshot struct {
	RoutedReads  int64 `json:"routed_reads"`
	RoutedScans  int64 `json:"routed_scans"`
	ScatterScans int64 `json:"scatter_scans"`
	Prepares     int64 `json:"prepares"`
	Commits      int64 `json:"commits"`
	Aborts       int64 `json:"aborts"`
	AckLost      int64 `json:"ack_lost"`
	Resolved     int64 `json:"resolved"`
}

// BufferSnapshot is the buffer-pool view.
type BufferSnapshot struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Flushes   int64   `json:"flushes"`
	HitRatio  float64 `json:"hit_ratio"`
}

func snapshotVector(v *Vector, vetoes *[MaxExt]Counter) []ExtSnapshot {
	var out []ExtSnapshot
	for id := 0; id < MaxExt; id++ {
		var es ExtSnapshot
		es.ID = id
		for op := Op(0); op < NumOps; op++ {
			cell := &v.stats[id][op]
			n := cell.Count.Load()
			if n == 0 {
				continue
			}
			es.Ops = append(es.Ops, OpSnapshot{
				Op:      op.String(),
				Count:   n,
				Errors:  cell.Errors.Load(),
				Latency: cell.Latency.Snapshot(),
			})
		}
		if vetoes != nil {
			es.Vetoes = vetoes[id].Load()
		}
		if len(es.Ops) > 0 || es.Vetoes > 0 {
			out = append(out, es)
		}
	}
	return out
}

// Snapshot materialises the engine's metrics. It is safe to call under
// concurrent recording; the result is a consistent-enough point-in-time
// view (individual values are exact, cross-value skew is possible).
func (e *Engine) Snapshot() Snapshot {
	hits, misses := e.Buffer.Hits.Load(), e.Buffer.Misses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	commitsPerFsync := 0.0
	if b := e.WAL.GroupBatches.Load(); b > 0 {
		commitsPerFsync = float64(e.WAL.GroupCommits.Load()) / float64(b)
	}
	bloomSkipRatio := 0.0
	if probes := e.LSM.BloomProbes.Load(); probes > 0 {
		bloomSkipRatio = float64(e.LSM.BloomSkips.Load()) / float64(probes)
	}
	return Snapshot{
		SM:  snapshotVector(&e.SM, nil),
		Att: snapshotVector(&e.Att, &e.AttVetoes),
		Lock: LockSnapshot{
			Requests:      e.Lock.Requests.Load(),
			Waits:         e.Lock.Waits.Load(),
			Deadlocks:     e.Lock.Deadlocks.Load(),
			Waiting:       e.Lock.Queue.Load(),
			MaxQueueDepth: e.Lock.Queue.Max(),
			WaitTime:      e.Lock.WaitTime.Snapshot(),
		},
		WAL: WALSnapshot{
			Appends:         e.WAL.Appends.Load(),
			AppendBytes:     e.WAL.AppendBytes.Load(),
			Syncs:           e.WAL.Syncs.Load(),
			Rollbacks:       e.WAL.Rollbacks.Load(),
			Checkpoints:     e.WAL.Checkpoints.Load(),
			RedoRecords:     e.WAL.RedoRecords.Load(),
			GroupCommits:    e.WAL.GroupCommits.Load(),
			GroupBatches:    e.WAL.GroupBatches.Load(),
			ForcedSyncs:     e.WAL.ForcedSyncs.Load(),
			CommitsPerFsync: commitsPerFsync,
		},
		Buffer: BufferSnapshot{
			Hits:      hits,
			Misses:    misses,
			Evictions: e.Buffer.Evictions.Load(),
			Flushes:   e.Buffer.Flushes.Load(),
			HitRatio:  ratio,
		},
		MVCC: MVCCSnapshot{
			SnapshotReads:   e.MVCC.SnapshotReads.Load(),
			ChainWalks:      e.MVCC.ChainWalks.Load(),
			Reconstructions: e.MVCC.Reconstructions.Load(),
			Pruned:          e.MVCC.Pruned.Load(),
			Frozen:          e.MVCC.Frozen.Load(),
		},
		LSM: LSMSnapshot{
			Flushes:             e.LSM.Flushes.Load(),
			FlushedEntries:      e.LSM.FlushedEntries.Load(),
			Compactions:         e.LSM.Compactions.Load(),
			CompactedRuns:       e.LSM.CompactedRuns.Load(),
			TombstonesDropped:   e.LSM.TombstonesDropped.Load(),
			BloomProbes:         e.LSM.BloomProbes.Load(),
			BloomSkips:          e.LSM.BloomSkips.Load(),
			BloomFalsePositives: e.LSM.BloomFalsePositives.Load(),
			BloomSkipRatio:      bloomSkipRatio,
			MemtableBytes:       e.LSM.MemtableBytes.Load(),
			MemtableBytesMax:    e.LSM.MemtableBytes.Max(),
			Runs:                e.LSM.Runs.Load(),
			RunsMax:             e.LSM.Runs.Max(),
		},
		Plan: PlanSnapshot{
			ParallelScans: e.Plan.ParallelScans.Load(),
			HashJoins:     e.Plan.HashJoins.Load(),
			Workers:       e.Plan.Workers.Load(),
			WorkersMax:    e.Plan.Workers.Max(),
			WorkerRows:    e.Plan.WorkerRows.Load(),
		},
		Txn: TxnSnapshot{
			CommitsWrite:    e.Txn.CommitsWrite.Load(),
			CommitsReadOnly: e.Txn.CommitsReadOnly.Load(),
			Aborts:          e.Txn.Aborts.Load(),
			LockWaitNanos:   e.Txn.LockWaitNanos.Load(),
			WALBytes:        e.Txn.WALBytes.Load(),
			RowsRead:        e.Txn.RowsRead.Load(),
			RowsWritten:     e.Txn.RowsWritten.Load(),
		},
		Part: PartSnapshot{
			RoutedReads:  e.Part.RoutedReads.Load(),
			RoutedScans:  e.Part.RoutedScans.Load(),
			ScatterScans: e.Part.ScatterScans.Load(),
			Prepares:     e.Part.Prepares.Load(),
			Commits:      e.Part.Commits.Load(),
			Aborts:       e.Part.Aborts.Load(),
			AckLost:      e.Part.AckLost.Load(),
			Resolved:     e.Part.Resolved.Load(),
		},
	}
}
