// Prometheus text-exposition rendering of a Snapshot.
//
// The engine keeps its metrics in its own vector-indexed registry (see
// obs.go); this file is the bridge to standard scraping infrastructure.
// It renders the exposition format directly — counters, gauges, and the
// already-bucketed latency histograms — so the debug server's /metrics
// endpoint needs no client library.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promNamespace prefixes every exposed metric family.
const promNamespace = "dmx"

// WritePrometheus renders s in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers per family, cumulative `le` buckets
// in seconds for histograms, and per-extension metrics as `ext`/`op`
// labelled series.
func WritePrometheus(w io.Writer, s Snapshot) error {
	p := &promWriter{w: w}
	p.vector("sm", "storage-method dispatch", s.SM, false)
	p.vector("att", "attachment dispatch", s.Att, true)

	p.family("lock_requests_total", "counter", "lock manager Acquire and TryAcquire calls")
	p.sample("lock_requests_total", "", float64(s.Lock.Requests))
	p.family("lock_waits_total", "counter", "lock requests that blocked")
	p.sample("lock_waits_total", "", float64(s.Lock.Waits))
	p.family("lock_deadlocks_total", "counter", "lock requests refused as deadlock victims")
	p.sample("lock_deadlocks_total", "", float64(s.Lock.Deadlocks))
	p.family("lock_waiting", "gauge", "transactions currently blocked on a lock")
	p.sample("lock_waiting", "", float64(s.Lock.Waiting))
	p.family("lock_queue_depth_max", "gauge", "high-water mark of concurrently blocked transactions")
	p.sample("lock_queue_depth_max", "", float64(s.Lock.MaxQueueDepth))
	p.histogram("lock_wait_seconds", "time spent blocked on lock acquisition", "", s.Lock.WaitTime)

	p.family("wal_appends_total", "counter", "recovery-log records written")
	p.sample("wal_appends_total", "", float64(s.WAL.Appends))
	p.family("wal_append_bytes_total", "counter", "recovery-log payload bytes appended")
	p.sample("wal_append_bytes_total", "", float64(s.WAL.AppendBytes))
	p.family("wal_syncs_total", "counter", "recovery-log backing-file fsyncs")
	p.sample("wal_syncs_total", "", float64(s.WAL.Syncs))
	p.family("wal_rollbacks_total", "counter", "log-driven rollbacks (veto, savepoint, abort)")
	p.sample("wal_rollbacks_total", "", float64(s.WAL.Rollbacks))
	p.family("wal_checkpoints_total", "counter", "completed checkpoints")
	p.sample("wal_checkpoints_total", "", float64(s.WAL.Checkpoints))
	p.family("wal_redo_records_total", "counter", "records dispatched to redo during restart recovery")
	p.sample("wal_redo_records_total", "", float64(s.WAL.RedoRecords))
	p.family("wal_group_commits_total", "counter", "commit syncs served by group commit")
	p.sample("wal_group_commits_total", "", float64(s.WAL.GroupCommits))
	p.family("wal_group_batches_total", "counter", "fsync rounds driven by the group-commit leader")
	p.sample("wal_group_batches_total", "", float64(s.WAL.GroupBatches))
	p.family("wal_forced_syncs_total", "counter", "WAL-before-data forces from the buffer pool")
	p.sample("wal_forced_syncs_total", "", float64(s.WAL.ForcedSyncs))
	p.family("wal_commits_per_fsync", "gauge", "group-commit batching ratio")
	p.sample("wal_commits_per_fsync", "", s.WAL.CommitsPerFsync)

	p.family("buffer_hits_total", "counter", "buffer pool page hits")
	p.sample("buffer_hits_total", "", float64(s.Buffer.Hits))
	p.family("buffer_misses_total", "counter", "buffer pool page misses")
	p.sample("buffer_misses_total", "", float64(s.Buffer.Misses))
	p.family("buffer_evictions_total", "counter", "buffer pool frame evictions")
	p.sample("buffer_evictions_total", "", float64(s.Buffer.Evictions))
	p.family("buffer_flushes_total", "counter", "dirty pages written back by FlushAll")
	p.sample("buffer_flushes_total", "", float64(s.Buffer.Flushes))
	p.family("buffer_hit_ratio", "gauge", "buffer pool hit ratio")
	p.sample("buffer_hit_ratio", "", s.Buffer.HitRatio)

	p.family("mvcc_snapshot_reads_total", "counter", "lock-free fetches and scans by snapshot transactions")
	p.sample("mvcc_snapshot_reads_total", "", float64(s.MVCC.SnapshotReads))
	p.family("mvcc_chain_walks_total", "counter", "version-chain walks past an invisible head")
	p.sample("mvcc_chain_walks_total", "", float64(s.MVCC.ChainWalks))
	p.family("mvcc_reconstructions_total", "counter", "record versions rebuilt from WAL records")
	p.sample("mvcc_reconstructions_total", "", float64(s.MVCC.Reconstructions))
	p.family("mvcc_pruned_total", "counter", "version-chain entries pruned below the oldest snapshot")
	p.sample("mvcc_pruned_total", "", float64(s.MVCC.Pruned))
	p.family("mvcc_frozen_total", "counter", "version chains retired by checkpoint freezes")
	p.sample("mvcc_frozen_total", "", float64(s.MVCC.Frozen))

	p.family("lsm_flushes_total", "counter", "LSM memtables sealed into sorted runs")
	p.sample("lsm_flushes_total", "", float64(s.LSM.Flushes))
	p.family("lsm_flushed_entries_total", "counter", "entries moved out of LSM memtables by flushes")
	p.sample("lsm_flushed_entries_total", "", float64(s.LSM.FlushedEntries))
	p.family("lsm_compactions_total", "counter", "LSM run-merge rounds installed")
	p.sample("lsm_compactions_total", "", float64(s.LSM.Compactions))
	p.family("lsm_compacted_runs_total", "counter", "input runs consumed by LSM merges")
	p.sample("lsm_compacted_runs_total", "", float64(s.LSM.CompactedRuns))
	p.family("lsm_tombstones_dropped_total", "counter", "delete markers retired by full-depth LSM merges")
	p.sample("lsm_tombstones_dropped_total", "", float64(s.LSM.TombstonesDropped))
	p.family("lsm_bloom_probes_total", "counter", "runs consulted by LSM direct-by-key lookups")
	p.sample("lsm_bloom_probes_total", "", float64(s.LSM.BloomProbes))
	p.family("lsm_bloom_skips_total", "counter", "runs skipped by their bloom filter")
	p.sample("lsm_bloom_skips_total", "", float64(s.LSM.BloomSkips))
	p.family("lsm_bloom_false_positives_total", "counter", "bloom passes that then found no key")
	p.sample("lsm_bloom_false_positives_total", "", float64(s.LSM.BloomFalsePositives))
	p.family("lsm_memtable_bytes", "gauge", "resident LSM memtable payload bytes")
	p.sample("lsm_memtable_bytes", "", float64(s.LSM.MemtableBytes))
	p.family("lsm_memtable_bytes_max", "gauge", "high-water mark of resident LSM memtable bytes")
	p.sample("lsm_memtable_bytes_max", "", float64(s.LSM.MemtableBytesMax))
	p.family("lsm_runs", "gauge", "resident LSM sorted runs")
	p.sample("lsm_runs", "", float64(s.LSM.Runs))
	p.family("lsm_runs_max", "gauge", "high-water mark of resident LSM sorted runs")
	p.sample("lsm_runs_max", "", float64(s.LSM.RunsMax))

	p.family("txn_commits_total", "counter", "committed transactions by mode")
	p.sample("txn_commits_total", `mode="write"`, float64(s.Txn.CommitsWrite))
	p.sample("txn_commits_total", `mode="readonly"`, float64(s.Txn.CommitsReadOnly))
	p.family("txn_aborts_total", "counter", "aborted transactions (incl. commit failures)")
	p.sample("txn_aborts_total", "", float64(s.Txn.Aborts))
	p.family("txn_lock_wait_nanos_total", "counter", "cumulative per-transaction lock-wait time")
	p.sample("txn_lock_wait_nanos_total", "", float64(s.Txn.LockWaitNanos))
	p.family("txn_wal_bytes_total", "counter", "WAL payload bytes charged to finished transactions")
	p.sample("txn_wal_bytes_total", "", float64(s.Txn.WALBytes))
	p.family("txn_rows_read_total", "counter", "rows returned to finished transactions")
	p.sample("txn_rows_read_total", "", float64(s.Txn.RowsRead))
	p.family("txn_rows_written_total", "counter", "rows modified by finished transactions")
	p.sample("txn_rows_written_total", "", float64(s.Txn.RowsWritten))

	p.family("plan_parallel_scans_total", "counter", "partitioned parallel scans opened by the planner")
	p.sample("plan_parallel_scans_total", "", float64(s.Plan.ParallelScans))
	p.family("plan_hash_joins_total", "counter", "hash joins chosen over nested loops")
	p.sample("plan_hash_joins_total", "", float64(s.Plan.HashJoins))
	p.family("plan_workers", "gauge", "parallel scan/build workers currently running")
	p.sample("plan_workers", "", float64(s.Plan.Workers))
	p.family("plan_workers_max", "gauge", "high-water mark of concurrent parallel workers")
	p.sample("plan_workers_max", "", float64(s.Plan.WorkersMax))
	p.family("plan_worker_rows_total", "counter", "rows produced inside parallel workers")
	p.sample("plan_worker_rows_total", "", float64(s.Plan.WorkerRows))

	p.family("part_routed_reads_total", "counter", "point reads routed to exactly one shard")
	p.sample("part_routed_reads_total", "", float64(s.Part.RoutedReads))
	p.family("part_routed_scans_total", "counter", "single-key scan ranges routed to one shard")
	p.sample("part_routed_scans_total", "", float64(s.Part.RoutedScans))
	p.family("part_scatter_scans_total", "counter", "scans fanned out across every shard")
	p.sample("part_scatter_scans_total", "", float64(s.Part.ScatterScans))
	p.family("part_prepares_total", "counter", "shard prepare requests sent (2PC phase one)")
	p.sample("part_prepares_total", "", float64(s.Part.Prepares))
	p.family("part_commits_total", "counter", "shard commit decisions delivered (2PC phase two)")
	p.sample("part_commits_total", "", float64(s.Part.Commits))
	p.family("part_aborts_total", "counter", "shard abort decisions delivered")
	p.sample("part_aborts_total", "", float64(s.Part.Aborts))
	p.family("part_ack_lost_total", "counter", "shard decision deliveries whose acknowledgement was lost")
	p.sample("part_ack_lost_total", "", float64(s.Part.AckLost))
	p.family("part_resolved_total", "counter", "in-doubt shard transactions resolved at recovery")
	p.sample("part_resolved_total", "", float64(s.Part.Resolved))
	return p.err
}

// promWriter accumulates exposition lines, remembering the first write
// error so callers check once at the end.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// family emits the HELP and TYPE header for one metric family.
func (p *promWriter) family(name, typ, help string) {
	p.printf("# HELP %s_%s %s\n", promNamespace, name, help)
	p.printf("# TYPE %s_%s %s\n", promNamespace, name, typ)
}

// sample emits one sample line. labels is the rendered label body
// (`ext="heap",op="insert"`) or empty.
func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	p.printf("%s_%s%s %s\n", promNamespace, name, labels, formatFloat(v))
}

// histogram emits one histogram family: the header plus one body.
func (p *promWriter) histogram(name, help, labels string, h HistogramSnapshot) {
	p.family(name, "histogram", help)
	p.histogramBody(name, labels, h)
}

// vector emits the per-extension dispatch metrics for one procedure
// vector: call/error counters and latency histograms labelled by
// extension and operation, plus veto counters for attachments.
func (p *promWriter) vector(layer, what string, exts []ExtSnapshot, vetoes bool) {
	opsName := layer + "_ops_total"
	errsName := layer + "_op_errors_total"
	latName := layer + "_op_latency_seconds"

	p.family(opsName, "counter", what+" calls")
	for _, e := range exts {
		for _, op := range e.Ops {
			p.sample(opsName, extLabels(e)+`,op="`+escapeLabel(op.Op)+`"`, float64(op.Count))
		}
	}
	p.family(errsName, "counter", what+" call errors")
	for _, e := range exts {
		for _, op := range e.Ops {
			p.sample(errsName, extLabels(e)+`,op="`+escapeLabel(op.Op)+`"`, float64(op.Errors))
		}
	}
	p.family(latName, "histogram", what+" call latency")
	for _, e := range exts {
		for _, op := range e.Ops {
			p.histogramBody(latName, extLabels(e)+`,op="`+escapeLabel(op.Op)+`"`, op.Latency)
		}
	}
	if vetoes {
		name := layer + "_vetoes_total"
		p.family(name, "counter", what+" modifications refused by veto")
		for _, e := range exts {
			if e.Vetoes > 0 {
				p.sample(name, extLabels(e), float64(e.Vetoes))
			}
		}
	}
}

// histogramBody emits the samples of one histogram label set: cumulative
// le buckets in seconds, the +Inf bucket, and _sum/_count. The +Inf
// bucket and _count are both taken from the buckets' own cumulative total
// so the exposition is self-consistent even when the snapshot raced
// concurrent observers. One family header (from histogram or vector) may
// be followed by many bodies, one per label set.
func (p *promWriter) histogramBody(name, labels string, h HistogramSnapshot) {
	pre := ""
	if labels != "" {
		pre = labels + ","
	}
	var cum int64
	for i := 0; i < NumBuckets-1; i++ {
		cum += h.Buckets[i]
		p.sample(name+"_bucket", pre+`le="`+formatFloat(BucketUpper(i).Seconds())+`"`, float64(cum))
	}
	cum += h.Buckets[NumBuckets-1]
	p.sample(name+"_bucket", pre+`le="+Inf"`, float64(cum))
	p.sample(name+"_sum", labels, float64(h.SumNanos)/1e9)
	p.sample(name+"_count", labels, float64(cum))
}

// extLabels renders the identifying labels of one extension entry. The
// numeric procedure-vector identifier is always present; the registered
// name is added when the snapshot carries it.
func extLabels(e ExtSnapshot) string {
	s := `id="` + strconv.Itoa(e.ID) + `"`
	if e.Name != "" {
		s += `,ext="` + escapeLabel(e.Name) + `"`
	}
	return s
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// formatFloat renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in shortest-round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
