package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
)

// validatePrometheus is a strict-enough text-exposition (0.0.4) checker:
// every line must be a HELP, TYPE, or sample line; each family must be
// typed before its samples; histograms must have non-decreasing buckets
// ending in +Inf with _count equal to the +Inf bucket per label set.
func validatePrometheus(t *testing.T, text string) {
	t.Helper()
	types := map[string]string{}     // family -> declared type
	samples := map[string][]string{} // metric name -> label bodies
	values := map[string]float64{}   // name{labels} -> value
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		n++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if !helpRe.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", n, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", n, line)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", n, m[1])
			}
			types[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment: %q", n, line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", n, line)
		}
		name, labels, valStr := m[1], m[2], m[len(m)-1]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if typ, ok := types[strings.TrimSuffix(name, suffix)]; ok && typ == "histogram" {
				family = strings.TrimSuffix(name, suffix)
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: sample %q before its TYPE", n, name)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", n, valStr, err)
		}
		samples[name] = append(samples[name], labels)
		values[name+labels] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Histogram invariants, per label set.
	for family, typ := range types {
		if typ != "histogram" {
			continue
		}
		// Group bucket label bodies by their non-le labels.
		groups := map[string][]string{}
		for _, labels := range samples[family+"_bucket"] {
			base, le := splitLe(t, labels)
			groups[base] = append(groups[base], le)
		}
		for base, les := range groups {
			var prev float64
			infSeen := false
			var infVal float64
			for _, le := range les {
				v := values[family+"_bucket"+rejoinLe(base, le)]
				if v < prev {
					t.Fatalf("%s%s: bucket le=%q value %v decreased below %v", family, base, le, v, prev)
				}
				prev = v
				if le == "+Inf" {
					infSeen = true
					infVal = v
				}
			}
			if !infSeen {
				t.Fatalf("%s%s: no +Inf bucket", family, base)
			}
			countKey := family + "_count"
			if base != "{}" {
				countKey += base
			}
			if c, ok := values[countKey]; !ok || c != infVal {
				t.Fatalf("%s%s: _count %v != +Inf bucket %v (ok=%v)", family, base, c, infVal, ok)
			}
		}
	}
}

// splitLe separates a bucket sample's label body into the non-le labels
// (normalised, "{}" when none) and the le value.
func splitLe(t *testing.T, labels string) (base, le string) {
	t.Helper()
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var rest []string
	for _, part := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(part, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		rest = append(rest, part)
	}
	if le == "" {
		t.Fatalf("bucket sample without le label: %q", labels)
	}
	return "{" + strings.Join(rest, ",") + "}", le
}

// rejoinLe reconstructs the label body splitLe decomposed.
func rejoinLe(base, le string) string {
	inner := strings.TrimSuffix(strings.TrimPrefix(base, "{"), "}")
	if inner == "" {
		return `{le="` + le + `"}`
	}
	return "{" + inner + `,le="` + le + `"}`
}

func TestWritePrometheusValid(t *testing.T) {
	e := NewEngine()
	e.SM.Observe(0, OpInsert, 300*time.Nanosecond, false)
	e.SM.Observe(0, OpInsert, 2*time.Millisecond, true)
	e.SM.Observe(1, OpScan, time.Microsecond, false)
	e.Att.Observe(0, OpInsert, 50*time.Microsecond, true)
	e.AttVetoes[0].Inc()
	e.Lock.Requests.Add(10)
	e.Lock.Waits.Add(2)
	e.Lock.WaitTime.Observe(3 * time.Millisecond)
	e.Lock.Queue.Inc()
	e.WAL.Appends.Add(42)
	e.WAL.GroupCommits.Add(8)
	e.WAL.GroupBatches.Add(2)
	e.Buffer.Hits.Add(30)
	e.Buffer.Misses.Add(10)

	snap := e.Snapshot()
	snap.SM[0].Name = "heap"
	snap.Att[0].Name = `ref"int\idx` // label escaping must hold

	var b strings.Builder
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	validatePrometheus(t, text)

	for _, want := range []string{
		`dmx_sm_ops_total{id="0",ext="heap",op="insert"} 2`,
		`dmx_sm_op_errors_total{id="0",ext="heap",op="insert"} 1`,
		`dmx_att_vetoes_total{id="0",ext="ref\"int\\idx"} 1`,
		`dmx_lock_requests_total 10`,
		`dmx_lock_waiting 1`,
		`dmx_wal_commits_per_fsync 4`,
		`dmx_buffer_hit_ratio 0.75`,
		`dmx_lock_wait_seconds_count 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing line %q in exposition:\n%s", want, text)
		}
	}
}

// TestWritePrometheusLSMFamilies pins the LSM exposition: counters,
// gauges with their high-water twins, and the derived bloom skip ratio.
func TestWritePrometheusLSMFamilies(t *testing.T) {
	e := NewEngine()
	e.LSM.Flushes.Add(4)
	e.LSM.FlushedEntries.Add(64)
	e.LSM.Compactions.Add(2)
	e.LSM.CompactedRuns.Add(5)
	e.LSM.TombstonesDropped.Add(3)
	e.LSM.BloomProbes.Add(8)
	e.LSM.BloomSkips.Add(6)
	e.LSM.BloomFalsePositives.Add(1)
	e.LSM.MemtableBytes.Add(900)
	e.LSM.MemtableBytes.Add(-200)
	e.LSM.Runs.Add(3)
	e.LSM.Runs.Add(-1)

	snap := e.Snapshot()
	if snap.LSM.BloomSkipRatio != 0.75 {
		t.Fatalf("bloom skip ratio = %v, want 0.75", snap.LSM.BloomSkipRatio)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	validatePrometheus(t, text)
	for _, want := range []string{
		`dmx_lsm_flushes_total 4`,
		`dmx_lsm_flushed_entries_total 64`,
		`dmx_lsm_compactions_total 2`,
		`dmx_lsm_compacted_runs_total 5`,
		`dmx_lsm_tombstones_dropped_total 3`,
		`dmx_lsm_bloom_probes_total 8`,
		`dmx_lsm_bloom_skips_total 6`,
		`dmx_lsm_bloom_false_positives_total 1`,
		`dmx_lsm_memtable_bytes 700`,
		`dmx_lsm_memtable_bytes_max 900`,
		`dmx_lsm_runs 2`,
		`dmx_lsm_runs_max 3`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing line %q in exposition:\n%s", want, text)
		}
	}
}

func TestWritePrometheusEmptyEngine(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, NewEngine().Snapshot()); err != nil {
		t.Fatal(err)
	}
	validatePrometheus(t, b.String())
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, fmt.Errorf("sink closed")
	}
	f.after--
	return len(p), nil
}

func TestWritePrometheusPropagatesWriteError(t *testing.T) {
	if err := WritePrometheus(&failWriter{after: 3}, NewEngine().Snapshot()); err == nil {
		t.Fatal("write error swallowed")
	}
}
