// Package pagefile provides the paged "disk" abstraction underneath the
// buffer pool.
//
// The paper's hardware (1987 disk arms, optical platters) is simulated by
// a Disk interface whose implementations count page reads and writes; the
// architecture's cost-model claims are about relative I/O counts, which
// the counters expose directly. MemDisk keeps pages in memory (the common
// case for tests and benchmarks); FileDisk is backed by a real file.
package pagefile

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"dmx/internal/fault"
)

// PageSize is the size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within a disk. Page 0 is valid.
type PageID uint32

// Stats counts disk traffic.
type Stats struct {
	Reads  int64
	Writes int64
}

// Disk is a page-addressed storage device.
type Disk interface {
	// ReadPage fills buf (PageSize bytes) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (PageSize bytes) as the page contents.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the disk by one zero page and returns its ID.
	Allocate() (PageID, error)
	// NumPages returns the current page count.
	NumPages() PageID
	// Stats returns cumulative I/O counts.
	Stats() Stats
	// Close releases the device.
	Close() error
}

// MemDisk is an in-memory Disk with I/O accounting.
type MemDisk struct {
	mu     sync.Mutex
	pages  [][]byte
	reads  atomic.Int64
	writes atomic.Int64
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// ReadPage implements Disk.
func (d *MemDisk) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pagefile: buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("pagefile: read past end: page %d of %d", id, len(d.pages))
	}
	d.reads.Add(1)
	copy(buf, d.pages[id])
	return nil
}

// WritePage implements Disk.
func (d *MemDisk) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pagefile: buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("pagefile: write past end: page %d of %d", id, len(d.pages))
	}
	d.writes.Add(1)
	copy(d.pages[id], buf)
	return nil
}

// Allocate implements Disk.
func (d *MemDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, make([]byte, PageSize))
	return PageID(len(d.pages) - 1), nil
}

// NumPages implements Disk.
func (d *MemDisk) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return PageID(len(d.pages))
}

// Stats implements Disk.
func (d *MemDisk) Stats() Stats {
	return Stats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// Close implements Disk.
func (d *MemDisk) Close() error { return nil }

// FileDisk is a Disk backed by a single operating-system file.
type FileDisk struct {
	mu     sync.Mutex
	f      *os.File
	npages PageID
	reads  atomic.Int64
	writes atomic.Int64
	faults *fault.Injector
}

// SetFaults arms the disk's page-write crash site with a fault injector
// (testing).
func (d *FileDisk) SetFaults(in *fault.Injector) {
	d.mu.Lock()
	d.faults = in
	d.mu.Unlock()
}

// OpenFileDisk opens (or creates) a file-backed disk at path.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDisk{f: f, npages: PageID(info.Size() / PageSize)}, nil
}

// ReadPage implements Disk.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pagefile: buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.npages {
		return fmt.Errorf("pagefile: read past end: page %d of %d", id, d.npages)
	}
	d.reads.Add(1)
	_, err := d.f.ReadAt(buf, int64(id)*PageSize)
	return err
}

// WritePage implements Disk.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("pagefile: buffer is %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.npages {
		return fmt.Errorf("pagefile: write past end: page %d of %d", id, d.npages)
	}
	// Page images are a rebuildable cache of the log, so the injected
	// crash models a torn page write as simply losing the write: recovery
	// never trusts page contents.
	allow, ferr := d.faults.BeforeWrite(fault.SitePageWrite, len(buf))
	if ferr != nil {
		if allow > 0 {
			d.f.WriteAt(buf[:allow], int64(id)*PageSize)
		}
		return ferr
	}
	d.writes.Add(1)
	_, err := d.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

// Allocate implements Disk.
func (d *FileDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.npages
	zero := make([]byte, PageSize)
	if _, err := d.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return 0, err
	}
	d.npages++
	return id, nil
}

// NumPages implements Disk.
func (d *FileDisk) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.npages
}

// Stats implements Disk.
func (d *FileDisk) Stats() Stats {
	return Stats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// Close implements Disk.
func (d *FileDisk) Close() error { return d.f.Close() }
