package pagefile

import (
	"path/filepath"
	"testing"
)

func exerciseDisk(t *testing.T, d Disk) {
	t.Helper()
	if d.NumPages() != 0 {
		t.Fatal("fresh disk should be empty")
	}
	p0, err := d.Allocate()
	if err != nil || p0 != 0 {
		t.Fatalf("Allocate = %d, %v", p0, err)
	}
	p1, _ := d.Allocate()
	if p1 != 1 || d.NumPages() != 2 {
		t.Fatalf("second page = %d, NumPages = %d", p1, d.NumPages())
	}

	buf := make([]byte, PageSize)
	buf[0], buf[PageSize-1] = 0xAB, 0xCD
	if err := d.WritePage(p1, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.ReadPage(p1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB || got[PageSize-1] != 0xCD {
		t.Fatal("page contents lost")
	}
	// Fresh page is zeroed.
	if err := d.ReadPage(p0, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("fresh page dirty at %d", i)
		}
	}

	// Bounds and size checks.
	if err := d.ReadPage(99, got); err == nil {
		t.Error("read past end accepted")
	}
	if err := d.WritePage(99, buf); err == nil {
		t.Error("write past end accepted")
	}
	if err := d.ReadPage(p0, make([]byte, 10)); err == nil {
		t.Error("short buffer read accepted")
	}
	if err := d.WritePage(p0, make([]byte, 10)); err == nil {
		t.Error("short buffer write accepted")
	}

	s := d.Stats()
	if s.Reads < 2 || s.Writes < 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMemDisk(t *testing.T) {
	d := NewMemDisk()
	defer d.Close()
	exerciseDisk(t, d)
}

func TestFileDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	exerciseDisk(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: pages persist.
	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 2 {
		t.Fatalf("reopened NumPages = %d", d2.NumPages())
	}
	buf := make([]byte, PageSize)
	if err := d2.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatal("persisted contents lost")
	}
}

func TestMemDiskWriteIsolation(t *testing.T) {
	d := NewMemDisk()
	p, _ := d.Allocate()
	buf := make([]byte, PageSize)
	buf[5] = 7
	d.WritePage(p, buf)
	buf[5] = 9 // mutating the caller's buffer must not affect the disk
	got := make([]byte, PageSize)
	d.ReadPage(p, got)
	if got[5] != 7 {
		t.Fatal("disk aliases caller buffer")
	}
}
