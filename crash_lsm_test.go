package dmx

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dmx/internal/fault"
)

// lsmCrashOp is the statement in flight when the injected crash fires.
type lsmCrashOp struct {
	kind string // "insert", "update", "delete"
	id   int
	val  string
}

// lsmCrashState tracks what one LSM ingest workload acknowledged.
type lsmCrashState struct {
	dir      string
	ddlAcked bool
	vals     map[int]string // id -> value, acknowledged statements only
	inFlight *lsmCrashOp
}

// lsmCrashScenarios sweeps the LSM-specific crash sites — memtable flush
// and run-merge install — plus the WAL sites under the same tombstone-
// heavy workload, so recovery is exercised against half-flushed and
// half-compacted stores. Deep mode adds later hits that land the crash
// after several flush/merge generations.
func lsmCrashScenarios(deep bool) []fault.Scenario {
	var out []fault.Scenario
	add := func(site fault.Site, nth int, durable bool) {
		out = append(out, fault.Scenario{
			Name:          fmt.Sprintf("lsm-%s@%d", site, nth),
			Site:          site,
			Nth:           nth,
			ExpectDurable: durable,
		})
	}
	for _, site := range fault.LSMSites() {
		add(site, 1, false)
		if deep {
			add(site, 3, false)
			add(site, 8, false)
		}
	}
	for _, site := range []fault.Site{fault.SiteWALAppend, fault.SiteWALFlush, fault.SiteWALSynced} {
		add(site, 7, site == fault.SiteWALSynced)
		if deep {
			add(site, 40, site == fault.SiteWALSynced)
		}
	}
	return out
}

// TestCrashLSMIngest runs a mixed insert/update/delete workload through
// the LSM storage method with a tiny memtable and minimum fanout, so the
// injected crashes land mid-flush and mid-compaction, and asserts the
// durability contract after recovery: acknowledged statements fully
// visible with their final values, unacknowledged ones atomic. (Named
// TestCrash… so `make crash` picks it up.)
func TestCrashLSMIngest(t *testing.T) {
	root := t.TempDir()
	states := make(map[string]*lsmCrashState)

	h := &fault.Harness{
		Scenarios: lsmCrashScenarios(os.Getenv("DMX_CRASH_DEEP") != ""),
		Workload: func(s fault.Scenario, inj *fault.Injector) error {
			st := &lsmCrashState{
				dir:  filepath.Join(root, s.Name),
				vals: make(map[int]string),
			}
			states[s.Name] = st
			if err := os.MkdirAll(st.dir, 0o755); err != nil {
				return err
			}
			db, err := Open(Config{
				LogPath:         filepath.Join(st.dir, "wal.log"),
				DiskPath:        filepath.Join(st.dir, "data.db"),
				CheckpointEvery: 64, // land some crashes after snapshot-embedded checkpoints
				Faults:          inj,
			})
			if err != nil {
				return err
			}
			// No db.Close(): the injected crash is a process death.
			exec := func(op lsmCrashOp, stmt string) error {
				st.inFlight = &op
				if _, err := db.Exec(stmt); err != nil {
					return err
				}
				st.inFlight = nil
				switch op.kind {
				case "delete":
					delete(st.vals, op.id)
				default:
					st.vals[op.id] = op.val
				}
				return nil
			}
			if _, err := db.Exec("CREATE TABLE ev (id INT NOT NULL, v STRING) USING append" +
				" WITH (memtable=512, fanout=2, compact=sync)"); err != nil {
				return err
			}
			st.ddlAcked = true
			pad := crashPad[:64]
			for i := 1; i <= crashMaxRows; i++ {
				v := fmt.Sprintf("v%d-%s", i, pad)
				if err := exec(lsmCrashOp{"insert", i, v}, fmt.Sprintf(
					"INSERT INTO ev VALUES (%d, '%s')", i, v)); err != nil {
					return err
				}
				if i%3 == 0 {
					u := fmt.Sprintf("u%d-%s", i-1, pad)
					if err := exec(lsmCrashOp{"update", i - 1, u}, fmt.Sprintf(
						"UPDATE ev SET v = '%s' WHERE id = %d", u, i-1)); err != nil {
						return err
					}
				}
				if i%5 == 0 {
					if err := exec(lsmCrashOp{"delete", i - 2, ""}, fmt.Sprintf(
						"DELETE FROM ev WHERE id = %d", i-2)); err != nil {
						return err
					}
				}
			}
			return fmt.Errorf("workload finished without crashing")
		},
		Verify: func(tb fault.TB, s fault.Scenario) {
			st := states[s.Name]
			db, err := Open(Config{
				LogPath:         filepath.Join(st.dir, "wal.log"),
				DiskPath:        filepath.Join(st.dir, "data.db"),
				CheckpointEvery: -1,
				Recover:         true,
			})
			if err != nil {
				tb.Errorf("%s: reopen: %v", s.Name, err)
				return
			}
			defer db.Close()

			res, err := db.Exec("SELECT id, v FROM ev")
			if err != nil {
				if !st.ddlAcked {
					return
				}
				tb.Errorf("%s: table lost after acked CREATE: %v", s.Name, err)
				return
			}
			got := make(map[int]string, len(res.Rows))
			for _, row := range res.Rows {
				id := int(row[0].AsInt())
				if _, dup := got[id]; dup {
					tb.Errorf("%s: id %d recovered twice", s.Name, id)
				}
				got[id] = row[1].S
			}
			inFlight := func(kind string, id int) bool {
				return s.ExpectDurable && st.inFlight != nil &&
					st.inFlight.kind == kind && st.inFlight.id == id
			}
			for id, want := range st.vals {
				v, ok := got[id]
				switch {
				case !ok && !inFlight("delete", id):
					tb.Errorf("%s: acked id %d lost (recovered %d rows)", s.Name, id, len(got))
				case ok && v != want && !inFlight("update", id):
					tb.Errorf("%s: id %d recovered %q, want %q", s.Name, id, v, want)
				case ok && v != want && inFlight("update", id) && v != st.inFlight.val:
					tb.Errorf("%s: id %d recovered %q, want %q or in-flight %q",
						s.Name, id, v, want, st.inFlight.val)
				}
			}
			for id := range got {
				if _, ok := st.vals[id]; !ok && !inFlight("insert", id) {
					tb.Errorf("%s: unacked id %d visible after recovery", s.Name, id)
				}
			}
			// The recovered store must keep ingesting above its sequence
			// high-water: a fresh insert lands and reads back.
			if _, err := db.Exec("INSERT INTO ev VALUES (9999, 'post-recovery')"); err != nil {
				tb.Errorf("%s: post-recovery insert: %v", s.Name, err)
				return
			}
			r, err := db.Exec("SELECT v FROM ev WHERE id = 9999")
			if err != nil || len(r.Rows) != 1 || r.Rows[0][0].S != "post-recovery" {
				tb.Errorf("%s: post-recovery readback: %+v, %v", s.Name, r, err)
			}
		},
	}
	h.Run(t)
}
