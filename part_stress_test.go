package dmx

// Concurrent two-phase-commit stress: eight sessions run mixed DML over a
// four-shard partitioned relation whose shard servers carry skewed
// latencies, so prepare and commit deliveries interleave in every order.
// Workers write disjoint id ranges and acknowledge commits into a shadow
// map; the harness then cross-checks the relation contents against the
// shadow, reconciles the sys.stat_shards view with the servers' own
// counters, and finally abandons the coordinator without Close and
// recovers onto brand-new empty shard servers — the local log alone must
// rebuild every shard.
//
// The default shape is sized for `go test ./...`; set DMX_STRESS_DEEP=1
// for the larger soak used by `make race`.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dmx/internal/lock"
)

const partStressShards = 4

type partShadow struct {
	mu   sync.Mutex
	vals map[int]string
}

func (m *partShadow) set(id int, val string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if val == "" {
		delete(m.vals, id)
	} else {
		m.vals[id] = val
	}
}

func TestStressPartConcurrent2PC(t *testing.T) {
	workers, ops := 8, 50
	if os.Getenv("DMX_STRESS_DEEP") != "" {
		workers, ops = 8, 150
	}
	dir := t.TempDir()
	cfg := Config{
		LogPath:           filepath.Join(dir, "wal.log"),
		DiskPath:          filepath.Join(dir, "data.db"),
		CheckpointEvery:   500,
		CommitBatchWindow: 100 * time.Microsecond,
	}
	newServers := func() []*ForeignServer {
		var srvs []*ForeignServer
		for i := 0; i < partStressShards; i++ {
			// Skewed latencies stagger shard acknowledgements, so slow
			// shards are still preparing while fast ones already voted.
			srvs = append(srvs, NewForeignServer(time.Duration(i)*50*time.Microsecond))
		}
		return srvs
	}
	attach := func(db *DB, srvs []*ForeignServer) {
		for i, srv := range srvs {
			db.AttachShardServer(fmt.Sprintf("p%d", i), srv)
		}
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srvs := newServers()
	attach(db, srvs)
	if _, err := db.Exec("CREATE TABLE st (id INT NOT NULL, v STRING) USING part" +
		" WITH (key=id, shards=4, servers='p0,p1,p2,p3', batch=9)"); err != nil {
		t.Fatal(err)
	}

	shadow := &partShadow{vals: make(map[int]string)}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			partStressWorker(t, db, shadow, w, ops)
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	partStressVerify(t, db, shadow, srvs, "post-storm")

	// Simulated coordinator crash onto brand-new shard backends: the
	// handles are abandoned without Close, and recovery must rebuild every
	// shard's contents from the local log before the verify rereads them.
	db2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	srvs2 := newServers()
	attach(db2, srvs2)
	if err := db2.Env.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	partStressVerify(t, db2, shadow, srvs2, "post-recovery")
}

// partStressWorker drives one session over its private id range: inserts,
// routed point updates and deletes, multi-shard explicit transactions, and
// point reads of its own acknowledged rows.
func partStressWorker(t *testing.T, db *DB, shadow *partShadow, w, ops int) {
	rng := rand.New(rand.NewSource(int64(w) + 1))
	s := db.NewSession()
	base := (w + 1) * 10000
	next := base
	var live []int
	exec := func(stmt string) bool {
		t.Helper()
		if _, err := s.Exec(stmt); err != nil {
			if errors.Is(err, lock.ErrDeadlock) {
				return false
			}
			t.Errorf("w%d: %q: %v", w, stmt, err)
			return false
		}
		return true
	}
	for i := 0; i < ops && !t.Failed(); i++ {
		switch k := rng.Intn(10); {
		case k < 4: // autocommit insert
			id := next
			next++
			v := fmt.Sprintf("w%d-%d-%d", w, id, i)
			if exec(fmt.Sprintf("INSERT INTO st VALUES (%d, '%s')", id, v)) {
				shadow.set(id, v)
				live = append(live, id)
			}
		case k < 6 && len(live) > 0: // routed point update
			id := live[rng.Intn(len(live))]
			v := fmt.Sprintf("w%d-%d-u%d", w, id, i)
			if exec(fmt.Sprintf("UPDATE st SET v = '%s' WHERE id = %d", v, id)) {
				shadow.set(id, v)
			}
		case k < 7 && len(live) > 0: // routed point delete
			j := rng.Intn(len(live))
			id := live[j]
			if exec(fmt.Sprintf("DELETE FROM st WHERE id = %d", id)) {
				shadow.set(id, "")
				live = append(live[:j], live[j+1:]...)
			}
		case k < 9: // multi-shard transaction: three inserts, one 2PC
			ids := []int{next, next + 1, next + 2}
			next += 3
			if _, err := s.Exec("BEGIN"); err != nil {
				t.Errorf("w%d begin: %v", w, err)
				continue
			}
			vals := make(map[int]string, len(ids))
			end := "COMMIT"
			for _, id := range ids {
				v := fmt.Sprintf("w%d-%d-m%d", w, id, i)
				vals[id] = v
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO st VALUES (%d, '%s')", id, v)); err != nil {
					if !errors.Is(err, lock.ErrDeadlock) {
						t.Errorf("w%d multi insert: %v", w, err)
					}
					end = "ROLLBACK"
					break
				}
			}
			if _, err := s.Exec(end); err != nil {
				t.Errorf("w%d %s: %v", w, end, err)
				continue
			}
			if end == "COMMIT" {
				for _, id := range ids {
					shadow.set(id, vals[id])
					live = append(live, id)
				}
			}
		default: // routed point read of an acknowledged row
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			res, err := s.Exec(fmt.Sprintf("SELECT v FROM st WHERE id = %d", id))
			if err != nil {
				if !errors.Is(err, lock.ErrDeadlock) {
					t.Errorf("w%d read %d: %v", w, id, err)
				}
				continue
			}
			if len(res.Rows) != 1 {
				t.Errorf("w%d read id %d: %d rows", w, id, len(res.Rows))
			}
		}
	}
}

// partStressVerify cross-checks the relation against the shadow map, then
// reconciles sys.stat_shards with both the scan and the servers' own
// message counters.
func partStressVerify(t *testing.T, db *DB, shadow *partShadow, srvs []*ForeignServer, stage string) {
	t.Helper()
	res, err := db.Exec("SELECT id, v FROM st")
	if err != nil {
		t.Fatalf("%s: scan: %v", stage, err)
	}
	shadow.mu.Lock()
	defer shadow.mu.Unlock()
	seen := make(map[int]string, len(res.Rows))
	for _, r := range res.Rows {
		id := int(r[0].AsInt())
		if _, dup := seen[id]; dup {
			t.Fatalf("%s: duplicate id %d", stage, id)
		}
		seen[id] = r[1].S
	}
	if len(seen) != len(shadow.vals) {
		t.Fatalf("%s: %d rows survive, shadow has %d", stage, len(seen), len(shadow.vals))
	}
	for id, want := range shadow.vals {
		got, ok := seen[id]
		if !ok {
			t.Fatalf("%s: acknowledged id %d lost", stage, id)
		}
		if got != want {
			t.Fatalf("%s: id %d = %q, shadow says %q", stage, id, got, want)
		}
	}

	stat, err := db.Exec("SELECT shard, records, in_doubt, messages FROM sys.stat_shards")
	if err != nil {
		t.Fatalf("%s: stat_shards: %v", stage, err)
	}
	if len(stat.Rows) != partStressShards {
		t.Fatalf("%s: stat_shards has %d rows, want %d", stage, len(stat.Rows), partStressShards)
	}
	total := int64(0)
	populated := 0
	for _, r := range stat.Rows {
		shardNo, recs, doubt, msgs := r[0].AsInt(), r[1].AsInt(), r[2].AsInt(), r[3].AsInt()
		total += recs
		if recs > 0 {
			populated++
		}
		if doubt != 0 {
			t.Fatalf("%s: shard %d reports %d in-doubt transactions", stage, shardNo, doubt)
		}
		if srvMsgs := srvs[shardNo].Messages.Load(); msgs > srvMsgs {
			t.Fatalf("%s: shard %d view reports %d messages, server counted %d", stage, shardNo, msgs, srvMsgs)
		}
		if msgs == 0 {
			t.Fatalf("%s: shard %d saw no traffic", stage, shardNo)
		}
	}
	if int(total) != len(seen) {
		t.Fatalf("%s: stat_shards counts %d records, scan returned %d", stage, total, len(seen))
	}
	if len(seen) >= 16 && populated < 2 {
		t.Fatalf("%s: %d records all landed on one shard", stage, len(seen))
	}
}
