// Benchmarks mirroring the experiment suite (see DESIGN.md for the
// claim → experiment mapping and EXPERIMENTS.md for the measured tables).
// cmd/dmxbench regenerates the full report; these testing.B targets give
// per-experiment numbers under the standard Go tooling.
package dmx

import (
	"fmt"
	"testing"
	"time"

	"dmx/internal/att/check"
	"dmx/internal/core"
	"dmx/internal/ddl"
	"dmx/internal/expr"
	"dmx/internal/lock"
	"dmx/internal/plan"
	"dmx/internal/remote"
	"dmx/internal/rig"
	"dmx/internal/sm/remotesm"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// --- E1: extension activation dispatch ---

func benchRegistry() *core.Registry {
	reg := core.NewRegistry()
	validate := func(*types.Schema, core.AttrList) error { return nil }
	for id := core.SMID(1); id <= 6; id++ {
		reg.RegisterStorageMethod(&core.StorageOps{ID: id, Name: fmt.Sprintf("sm%d", id), ValidateAttrs: validate})
	}
	return reg
}

func BenchmarkE1DispatchVector(b *testing.B) {
	reg := benchRegistry()
	for i := 0; b.Loop(); i++ {
		reg.StorageOps(core.SMID(1+i%6)).ValidateAttrs(nil, nil)
	}
}

func BenchmarkE1DispatchMap(b *testing.B) {
	reg := benchRegistry()
	byMap := map[core.SMID]*core.StorageOps{}
	for id := core.SMID(1); id <= 6; id++ {
		byMap[id] = reg.StorageOps(id)
	}
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		byMap[core.SMID(1+i%6)].ValidateAttrs(nil, nil)
	}
}

func BenchmarkE1DispatchByName(b *testing.B) {
	reg := benchRegistry()
	byName := map[string]*core.StorageOps{}
	names := make([]string, 0, 6)
	for id := core.SMID(1); id <= 6; id++ {
		ops := reg.StorageOps(id)
		byName[ops.Name] = ops
		names = append(names, ops.Name)
	}
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		byName[names[i%6]].ValidateAttrs(nil, nil)
	}
}

// --- E2: join strategies ---

func joinEnv(b *testing.B, outerN int, joinIndex string, prep func(env *core.Env)) (*core.Env, *plan.Bound) {
	b.Helper()
	env := core.NewEnv(core.Config{})
	emp := rig.MustCreate(env, "emp", "heap", nil)
	rig.Load(env, emp, outerN, 20)
	dept := rig.MustCreate(env, "dept", "memory", nil)
	rig.WithTxn(env, func(tx *txn.Txn) {
		for i := 0; i < 10; i++ {
			dept.Insert(tx, types.Record{types.Int(int64(i)), types.Int(int64(i)), types.Float(0), types.Str("d")})
		}
	})
	if prep != nil {
		prep(env)
	}
	spec := plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}, JoinIndex: joinIndex}
	bound, err := plan.New(env).Plan(plan.Query{Table: "emp", Fields: []int{0}, Join: &spec})
	if err != nil {
		b.Fatal(err)
	}
	return env, bound
}

func runJoin(b *testing.B, env *core.Env, bound *plan.Bound) {
	b.Helper()
	for b.Loop() {
		tx := env.Begin()
		rows, err := plan.Collect(bound.Execute(tx))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty join")
		}
		tx.Commit()
	}
}

func BenchmarkE2JoinNestedLoop(b *testing.B) {
	env, bound := joinEnv(b, 1000, "", nil)
	b.ResetTimer()
	runJoin(b, env, bound)
}

func BenchmarkE2JoinIndexNL(b *testing.B) {
	env, bound := joinEnv(b, 1000, "", func(env *core.Env) {
		rig.MustAttach(env, "dept", "btree", core.AttrList{"on": "dno"})
	})
	b.ResetTimer()
	runJoin(b, env, bound)
}

func BenchmarkE2JoinIndex(b *testing.B) {
	env, bound := joinEnv(b, 1000, "ed", func(env *core.Env) {
		rig.MustAttach(env, "emp", "joinindex", core.AttrList{"name": "ed", "on": "dno", "peer": "dept"})
		rig.MustAttach(env, "dept", "joinindex", core.AttrList{"name": "ed", "on": "dno", "peer": "emp"})
	})
	b.ResetTimer()
	runJoin(b, env, bound)
}

// --- E3: bound plans ---

func e3Env(b *testing.B) (*core.Env, plan.Query) {
	b.Helper()
	env := core.NewEnv(core.Config{})
	emp := rig.MustCreate(env, "emp", "memory", nil)
	rig.Load(env, emp, 5000, 20)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "byeno", "on": "eno", "unique": "true"})
	q := plan.Query{Table: "emp", Fields: []int{2},
		Filter: expr.Eq(expr.Field(0), expr.Const(types.Int(123)))}
	return env, q
}

func BenchmarkE3BoundPlanReused(b *testing.B) {
	env, q := e3Env(b)
	bound, err := plan.New(env).Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		tx := env.Begin()
		if _, err := plan.Collect(bound.Execute(tx)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkE3BoundPlanReplanned(b *testing.B) {
	env, q := e3Env(b)
	p := plan.New(env)
	b.ResetTimer()
	for b.Loop() {
		bound, err := p.Plan(q)
		if err != nil {
			b.Fatal(err)
		}
		tx := env.Begin()
		if _, err := plan.Collect(bound.Execute(tx)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkE3ParseBindExecute(b *testing.B) {
	env, _ := e3Env(b)
	const sql = "SELECT salary FROM emp WHERE eno = 123"
	b.ResetTimer()
	for b.Loop() {
		// A fresh session per iteration defeats the saved-plan cache,
		// paying parse + catalog access + optimization every time.
		sess := ddl.NewSession(env)
		if _, err := sess.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: filter pushdown ---

func e4Env(b *testing.B) (*core.Env, *core.Relation) {
	b.Helper()
	env := core.NewEnv(core.Config{PoolFrames: 2048})
	emp := rig.MustCreate(env, "emp", "heap", nil)
	rig.Load(env, emp, 10000, 100)
	return env, emp
}

func BenchmarkE4FilterPushdown(b *testing.B) {
	env, emp := e4Env(b)
	filter := expr.Lt(expr.Field(0), expr.Const(types.Int(100))) // 1%
	b.ResetTimer()
	for b.Loop() {
		tx := env.Begin()
		scan, err := emp.OpenScan(tx, core.ScanOptions{Filter: filter, Fields: []int{0}})
		if err != nil {
			b.Fatal(err)
		}
		if got := rig.Drain(scan); got != 100 {
			b.Fatalf("matches = %d", got)
		}
		tx.Commit()
	}
}

func BenchmarkE4FilterCopyThenFilter(b *testing.B) {
	env, emp := e4Env(b)
	filter := expr.Lt(expr.Field(0), expr.Const(types.Int(100)))
	b.ResetTimer()
	for b.Loop() {
		tx := env.Begin()
		scan, err := emp.OpenScan(tx, core.ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		matches := 0
		for {
			_, rec, ok, err := scan.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			keep, err := env.Eval.EvalBool(filter, rec, nil)
			if err != nil {
				b.Fatal(err)
			}
			if keep {
				matches++
			}
		}
		if matches != 100 {
			b.Fatalf("matches = %d", matches)
		}
		tx.Commit()
	}
}

// --- E5: attachment maintenance cost ---

func benchInserts(b *testing.B, atts func(env *core.Env)) {
	env := core.NewEnv(core.Config{})
	rig.MustCreate(env, "emp", "memory", nil)
	if atts != nil {
		atts(env)
	}
	emp, _ := env.OpenRelationByName("emp")
	tx := env.Begin()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if _, err := emp.Insert(tx, rig.EmpRecord(i, 20)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tx.Commit()
}

func BenchmarkE5AttachmentCost0(b *testing.B) { benchInserts(b, nil) }

func BenchmarkE5AttachmentCost2Indexes(b *testing.B) {
	benchInserts(b, func(env *core.Env) {
		rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i1", "on": "dno"})
		rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i2", "on": "salary"})
	})
}

func BenchmarkE5AttachmentCost6Types(b *testing.B) {
	check.RegisterPredicate("bench5pos", expr.Ge(expr.Field(0), expr.Const(types.Int(0))))
	benchInserts(b, func(env *core.Env) {
		rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i1", "on": "dno"})
		rig.MustAttach(env, "emp", "hash", core.AttrList{"name": "h1", "on": "eno"})
		rig.MustAttach(env, "emp", "unique", core.AttrList{"name": "u1", "on": "eno"})
		rig.MustAttach(env, "emp", "check", core.AttrList{"name": "c1", "predicate": "bench5pos"})
		rig.MustAttach(env, "emp", "stats", nil)
		rig.MustAttach(env, "emp", "aggregate", core.AttrList{"name": "a1", "group": "dno", "value": "salary"})
	})
}

// --- E6: access path selection ---

func e6Env(b *testing.B) (*core.Env, *plan.Planner) {
	b.Helper()
	env := core.NewEnv(core.Config{PoolFrames: 2048})
	emp := rig.MustCreate(env, "emp", "heap", nil)
	rig.Load(env, emp, 20000, 40)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "byeno", "on": "eno", "unique": "true"})
	rig.MustAttach(env, "emp", "hash", core.AttrList{"name": "bydno", "on": "dno"})
	return env, plan.New(env)
}

func benchQuery(b *testing.B, env *core.Env, p *plan.Planner, filter *expr.Expr) {
	b.Helper()
	bound, err := p.Plan(plan.Query{Table: "emp", Fields: []int{0}, Filter: filter})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		tx := env.Begin()
		if _, err := plan.Collect(bound.Execute(tx)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkE6AccessPathPoint(b *testing.B) {
	env, p := e6Env(b)
	benchQuery(b, env, p, expr.Eq(expr.Field(0), expr.Const(types.Int(10000))))
}

func BenchmarkE6AccessPathHashEq(b *testing.B) {
	env, p := e6Env(b)
	benchQuery(b, env, p, expr.Eq(expr.Field(1), expr.Const(types.Int(3))))
}

func BenchmarkE6AccessPathScan(b *testing.B) {
	env, p := e6Env(b)
	benchQuery(b, env, p, expr.Gt(expr.Field(2), expr.Const(types.Float(19990))))
}

func BenchmarkE6AccessPathSpatial(b *testing.B) {
	env := core.NewEnv(core.Config{})
	s := types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "shape", Kind: types.KindBytes},
	)
	rig.WithTxn(env, func(tx *txn.Txn) {
		if _, err := env.CreateRelation(tx, "parcels", s, "memory", nil); err != nil {
			b.Fatal(err)
		}
	})
	parcels, _ := env.OpenRelationByName("parcels")
	rig.WithTxn(env, func(tx *txn.Txn) {
		for i := 0; i < 10000; i++ {
			x, y := float64(i%100)*10, float64(i/100)*10
			parcels.Insert(tx, types.Record{types.Int(int64(i)), expr.NewBox(x, y, x+2, y+2).Value()})
		}
	})
	rig.MustAttach(env, "parcels", "rtree", core.AttrList{"on": "shape"})
	filter := expr.Encloses(expr.Const(expr.NewBox(0, 0, 100, 100).Value()), expr.Field(1))
	bound, err := plan.New(env).Plan(plan.Query{Table: "parcels", Fields: []int{0}, Filter: filter})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for b.Loop() {
		tx := env.Begin()
		if _, err := plan.Collect(bound.Execute(tx)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

// --- E7: storage methods ---

func benchSMInsert(b *testing.B, sm string, attrs core.AttrList, setup func(env *core.Env)) {
	env := core.NewEnv(core.Config{PoolFrames: 2048})
	if setup != nil {
		setup(env)
	}
	rel := rig.MustCreate(env, "t", sm, attrs)
	tx := env.Begin()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if _, err := rel.Insert(tx, rig.EmpRecord(i, 40)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tx.Commit()
}

func BenchmarkE7StorageMethodsHeapInsert(b *testing.B) { benchSMInsert(b, "heap", nil, nil) }

func BenchmarkE7StorageMethodsBTreeInsert(b *testing.B) {
	benchSMInsert(b, "btree", core.AttrList{"key": "eno"}, nil)
}

func BenchmarkE7StorageMethodsMemoryInsert(b *testing.B) { benchSMInsert(b, "memory", nil, nil) }

func BenchmarkE7StorageMethodsAppendInsert(b *testing.B) { benchSMInsert(b, "append", nil, nil) }

func BenchmarkE7StorageMethodsRemoteInsert(b *testing.B) {
	benchSMInsert(b, "remote", core.AttrList{"server": "fed"}, func(env *core.Env) {
		remotesm.AttachServer(env, "fed", remote.NewServer(5*time.Microsecond))
	})
}

// --- E8: veto and rollback ---

func BenchmarkE8VetoRollback(b *testing.B) {
	check.RegisterPredicate("bench8pos", expr.Ge(expr.Field(0), expr.Const(types.Int(0))))
	env := core.NewEnv(core.Config{})
	rig.MustCreate(env, "emp", "memory", nil)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i1", "on": "dno"})
	rig.MustAttach(env, "emp", "check", core.AttrList{"name": "pos", "predicate": "bench8pos"})
	emp, _ := env.OpenRelationByName("emp")
	tx := env.Begin()
	bad := rig.EmpRecord(0, 20)
	bad[0] = types.Int(-1)
	b.ResetTimer()
	for b.Loop() {
		if _, err := emp.Insert(tx, bad); err == nil {
			b.Fatal("bad insert accepted")
		}
	}
	b.StopTimer()
	tx.Commit()
}

func BenchmarkE8SavepointRollback100(b *testing.B) {
	env := core.NewEnv(core.Config{})
	emp := rig.MustCreate(env, "emp", "memory", nil)
	tx := env.Begin()
	n := 0
	b.ResetTimer()
	for b.Loop() {
		if _, err := tx.Savepoint("sp"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := emp.Insert(tx, rig.EmpRecord(n, 20)); err != nil {
				b.Fatal(err)
			}
			n++
		}
		if err := tx.RollbackTo("sp"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tx.Commit()
}

// --- E9: deferred constraints ---

func benchRefint(b *testing.B, timing string) {
	env := core.NewEnv(core.Config{})
	dept := rig.MustCreate(env, "dept", "memory", nil)
	rig.Load(env, dept, 200, 4)
	rig.MustCreate(env, "emp", "memory", nil)
	rig.MustAttach(env, "emp", "refint", core.AttrList{
		"name": "fk", "role": "child", "on": "dno",
		"peer": "dept", "peerkey": "eno", "timing": timing,
	})
	emp, _ := env.OpenRelationByName("emp")
	b.ResetTimer()
	i := 0
	for b.Loop() {
		rig.WithTxn(env, func(tx *txn.Txn) {
			for j := 0; j < 100; j++ {
				rec := rig.EmpRecord(i, 4)
				rec[1] = types.Int(int64(i % 200)) // valid FK
				if _, err := emp.Insert(tx, rec); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	}
}

func BenchmarkE9DeferredImmediate(b *testing.B) { benchRefint(b, "immediate") }
func BenchmarkE9DeferredDeferred(b *testing.B)  { benchRefint(b, "deferred") }

// --- E10: cascading deletes ---

func BenchmarkE10CascadeDepth3(b *testing.B) {
	// Classic b.N loop: the per-iteration setup is excluded with the
	// timer controls, which b.Loop does not permit.
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		env := core.NewEnv(core.Config{})
		for level := 0; level <= 3; level++ {
			rig.MustCreate(env, fmt.Sprintf("r%d", level), "memory", nil)
		}
		for level := 0; level < 3; level++ {
			rig.MustAttach(env, fmt.Sprintf("r%d", level), "refint", core.AttrList{
				"name": "cascade", "role": "parent", "on": "eno",
				"peer": fmt.Sprintf("r%d", level+1), "peerkey": "dno", "action": "cascade",
			})
		}
		var rootKey types.Key
		rig.WithTxn(env, func(tx *txn.Txn) {
			count := 1
			for level := 0; level <= 3; level++ {
				rel, _ := env.OpenRelationByName(fmt.Sprintf("r%d", level))
				for i := 0; i < count; i++ {
					k, err := rel.Insert(tx, types.Record{
						types.Int(int64(i)), types.Int(int64(i / 4)), types.Float(0), types.Str(""),
					})
					if err != nil {
						b.Fatal(err)
					}
					if level == 0 {
						rootKey = k
					}
				}
				count *= 4
			}
		})
		root, _ := env.OpenRelationByName("r0")
		b.StartTimer()
		rig.WithTxn(env, func(tx *txn.Txn) {
			if err := root.Delete(tx, rootKey); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- E11: descriptor encode/decode ---

func benchDescriptor(b *testing.B, present int) {
	rd := &core.RelDesc{RelID: 7, Name: "emp", Schema: rig.EmpSchema(), SM: core.SMHeap,
		SMDesc: []byte{1, 2, 3, 4}}
	for i := 0; i < present; i++ {
		rd.AttDesc[core.AttID(i+1)] = make([]byte, 24)
	}
	enc := rd.AppendEncode(nil)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := core.DecodeRelDesc(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11Descriptor0Attachments(b *testing.B)  { benchDescriptor(b, 0) }
func BenchmarkE11Descriptor10Attachments(b *testing.B) { benchDescriptor(b, 10) }

// --- E12: lock manager ---

func BenchmarkE12LockingUncontended(b *testing.B) {
	mgr := lock.NewManager()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		id := wal.TxnID(i + 1)
		for k := 0; k < 4; k++ {
			if err := mgr.Acquire(id, lock.KeyResource(1, []byte{byte(i), byte(k)}), lock.ModeX); err != nil {
				b.Fatal(err)
			}
		}
		mgr.ReleaseAll(id)
		i++
	}
}

func BenchmarkE12LockingParallel(b *testing.B) {
	mgr := lock.NewManager()
	var seq wal.TxnID
	var mu = make(chan wal.TxnID, 1)
	mu <- 1
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := <-mu
			mu <- id + 1
			_ = seq
			for k := 0; k < 4; k++ {
				if err := mgr.Acquire(id, lock.KeyResource(uint32(id%64), []byte{byte(k)}), lock.ModeS); err != nil {
					b.Fatal(err)
				}
			}
			mgr.ReleaseAll(id)
		}
	})
}

// --- A1: ablation — index-maintenance skip on unchanged fields ---

func benchA1Update(b *testing.B, touchIndexed bool) {
	env := core.NewEnv(core.Config{})
	emp := rig.MustCreate(env, "emp", "memory", nil)
	keys := rig.Load(env, emp, 1000, 20)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i1", "on": "dno"})
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i2", "on": "eno"})
	emp, _ = env.OpenRelationByName("emp")
	tx := env.Begin()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		idx := i % len(keys)
		rec := rig.EmpRecord(idx, 20)
		rec[3] = types.Str(fmt.Sprintf("pad%d", i))
		if touchIndexed {
			rec[1] = types.Int(int64(i % 10))
		}
		nk, err := emp.Update(tx, keys[idx], rec)
		if err != nil {
			b.Fatal(err)
		}
		keys[idx] = nk
	}
	b.StopTimer()
	tx.Commit()
}

func BenchmarkA1UpdateNonIndexedField(b *testing.B) { benchA1Update(b, false) }
func BenchmarkA1UpdateIndexedField(b *testing.B)    { benchA1Update(b, true) }

// --- A2: ablation — remote scan batch size ---

func benchA2RemoteScan(b *testing.B, batch int) {
	env := core.NewEnv(core.Config{})
	remotesm.AttachServer(env, "fed", remote.NewServer(5*time.Microsecond))
	rel := rig.MustCreate(env, "t", "remote",
		core.AttrList{"server": "fed", "batch": fmt.Sprint(batch)})
	rig.Load(env, rel, 1000, 20)
	b.ResetTimer()
	for b.Loop() {
		tx := env.Begin()
		scan, err := rel.OpenScan(tx, core.ScanOptions{Fields: []int{0}})
		if err != nil {
			b.Fatal(err)
		}
		if got := rig.Drain(scan); got != 1000 {
			b.Fatalf("scanned %d", got)
		}
		tx.Commit()
	}
}

func BenchmarkA2RemoteScanBatch1(b *testing.B)   { benchA2RemoteScan(b, 1) }
func BenchmarkA2RemoteScanBatch100(b *testing.B) { benchA2RemoteScan(b, 100) }
