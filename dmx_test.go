package dmx

import (
	"errors"
	"path/filepath"
	"testing"

	"dmx/internal/expr"
	"dmx/internal/pagefile"
	"dmx/internal/types"
)

func TestOpenExecQuery(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, err = db.Exec(
		"CREATE TABLE emp (eno INT NOT NULL, name STRING, salary FLOAT) USING heap",
		"CREATE INDEX byeno ON emp (eno)",
		"INSERT INTO emp VALUES (1, 'ada', 100.0), (2, 'bob', 90.0)",
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT name FROM emp WHERE eno = 2")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "bob" {
		t.Fatalf("res = %+v, %v", res, err)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		LogPath:  filepath.Join(dir, "wal.log"),
		DiskPath: filepath.Join(dir, "data.db"),
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(
		"CREATE TABLE t (id INT NOT NULL, v STRING) USING heap",
		"INSERT INTO t VALUES (1, 'survives')",
	); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Recover = true
	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec("SELECT v FROM t")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "survives" {
		t.Fatalf("recovered res = %+v, %v", res, err)
	}
	// The recovered database accepts new work.
	if _, err := db2.Exec("INSERT INTO t VALUES (2, 'new')"); err != nil {
		t.Fatal(err)
	}
}

func TestDirectGenericInterface(t *testing.T) {
	db, _ := Open(Config{})
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING memory"); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	key, err := rel.Insert(tx, Record{Int(7), Str("x")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Fetch(tx, key, nil, nil)
	if err != nil || got[0].AsInt() != 7 {
		t.Fatalf("fetch = %v, %v", got, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Relation("ghost"); err == nil {
		t.Fatal("missing relation accepted")
	}
}

func TestRegisterTriggerAndFunction(t *testing.T) {
	db, _ := Open(Config{})
	defer db.Close()
	db.RegisterFunction("double", func(args []Value) (Value, error) {
		return Int(args[0].AsInt() * 2), nil
	})
	fired := 0
	db.RegisterTrigger("count_it", func(env *Env, tx *Txn, ev TriggerEvent, rd *RelDesc, key Key, o, n Record) error {
		fired++
		return nil
	})
	if _, err := db.Exec(
		"CREATE TABLE t (id INT NOT NULL) USING memory",
		"CREATE ATTACHMENT trigger ON t WITH (call=count_it)",
		"INSERT INTO t VALUES (5)",
	); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("trigger fired %d times", fired)
	}
	res, err := db.Exec("SELECT id FROM t WHERE id = double(2) + 1")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("function query = %+v, %v", res, err)
	}
}

func TestCheckPredicateRegistration(t *testing.T) {
	db, _ := Open(Config{})
	defer db.Close()
	db.RegisterCheckPredicate("positive", expr.Gt(expr.Field(0), expr.Const(types.Int(0))))
	if _, err := db.Exec(
		"CREATE TABLE t (id INT NOT NULL) USING memory",
		"CREATE ATTACHMENT check ON t WITH (name=pos, predicate=positive)",
		"INSERT INTO t VALUES (1)",
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (-1)"); err == nil {
		t.Fatal("constraint did not fire through facade")
	}
}

func TestForeignServerThroughFacade(t *testing.T) {
	db, _ := Open(Config{})
	defer db.Close()
	srv := NewForeignServer(0)
	db.AttachForeignServer("fed", srv)
	if _, err := db.Exec(
		"CREATE TABLE far (id INT NOT NULL, v STRING) USING remote WITH (server=fed)",
		"INSERT INTO far VALUES (1, 'remote row')",
	); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT v FROM far WHERE id = 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "remote row" {
		t.Fatalf("remote res = %+v, %v", res, err)
	}
	if srv.Messages.Load() == 0 {
		t.Fatal("no messages reached the foreign server")
	}
}

func TestPlanAPI(t *testing.T) {
	db, _ := Open(Config{})
	defer db.Close()
	if _, err := db.Exec(
		"CREATE TABLE t (id INT NOT NULL, v INT) USING memory",
		"INSERT INTO t VALUES (1, 10), (2, 20)",
	); err != nil {
		t.Fatal(err)
	}
	b, err := db.Plan(Query{Table: "t", Fields: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	rows, err := b.Execute(tx)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	rows.Close()
	tx.Commit()
	if n != 2 {
		t.Fatalf("plan rows = %d", n)
	}
}

func TestExecErrorWrapsStatement(t *testing.T) {
	db, _ := Open(Config{})
	defer db.Close()
	_, err := db.Exec("SELEKT nothing")
	if err == nil || !errors.Is(err, err) {
		t.Fatal("bad statement accepted")
	}
}

func TestCloseFlushesDirtyFramesToDisk(t *testing.T) {
	// Regression: Close used to close the page file without flushing the
	// buffer pool, so heap pages dirtied in memory never reached disk —
	// the file held only the zero pages written at allocation time.
	dir := t.TempDir()
	diskPath := filepath.Join(dir, "data.db")
	db, err := Open(Config{DiskPath: diskPath, PoolFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(
		"CREATE TABLE t (id INT NOT NULL, v STRING) USING heap",
		"INSERT INTO t VALUES (1, 'persisted-by-close')",
	); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := pagefile.OpenFileDisk(diskPath)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.NumPages() == 0 {
		t.Fatal("no pages allocated")
	}
	buf := make([]byte, pagefile.PageSize)
	nonZero := false
	for id := pagefile.PageID(0); id < d.NumPages() && !nonZero; id++ {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				nonZero = true
				break
			}
		}
	}
	if !nonZero {
		t.Fatal("all pages are zero after Close: dirty frames were dropped")
	}
}
