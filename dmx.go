// Package dmx is a relational database engine built around the data
// management extension architecture of Lindsay, McPherson & Pirahesh
// (SIGMOD 1987): relation storage methods and attachments (access paths,
// integrity constraints, and triggers) are alternative implementations of
// generic abstractions, installed in procedure vectors and coordinated by
// common recovery, locking, event, and predicate-evaluation services.
//
// Opening a database links in the factory extensions:
//
//	storage methods: temp, heap, btree, memory, append, remote
//	attachments:     btree, hash, rtree, joinindex, check, refint,
//	                 trigger, stats, aggregate, unique
//
// The quickest way in is the SQL-ish session:
//
//	db, _ := dmx.Open(dmx.Config{})
//	db.Exec(`CREATE TABLE emp (eno INT NOT NULL, name STRING) USING heap`)
//	db.Exec(`CREATE INDEX byeno ON emp (eno)`)
//	db.Exec(`INSERT INTO emp VALUES (1, 'ada')`)
//	res, _ := db.Exec(`SELECT name FROM emp WHERE eno = 1`)
//
// Lower-level control (explicit transactions, direct generic-interface
// calls, custom extensions) is available through Env.
package dmx

import (
	"fmt"
	"io"
	"time"

	// Factory linking: importing an extension package installs its
	// operation tables in the default procedure-vector registry.
	_ "dmx/internal/att/aggmv"
	_ "dmx/internal/att/btreeix"
	"dmx/internal/att/check"
	_ "dmx/internal/att/hashidx"
	_ "dmx/internal/att/joinidx"
	_ "dmx/internal/att/refint"
	_ "dmx/internal/att/rtreeix"
	_ "dmx/internal/att/stats"
	"dmx/internal/att/trigger"
	_ "dmx/internal/att/unique"
	_ "dmx/internal/sm/appendsm"
	_ "dmx/internal/sm/btreesm"
	_ "dmx/internal/sm/heap"
	_ "dmx/internal/sm/memsm"
	"dmx/internal/sm/partsm"
	"dmx/internal/sm/remotesm"
	_ "dmx/internal/sm/syssm"
	_ "dmx/internal/sm/tempsm"

	"dmx/internal/core"
	"dmx/internal/ddl"
	"dmx/internal/expr"
	"dmx/internal/fault"
	"dmx/internal/pagefile"
	"dmx/internal/plan"
	"dmx/internal/remote"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"
)

// Re-exported core types, so applications speak one import path.
type (
	// Env is the database execution environment (see internal/core).
	Env = core.Env
	// Txn is a transaction handle.
	Txn = txn.Txn
	// Relation is the runtime handle for direct generic-interface calls.
	Relation = core.Relation
	// Record is a tuple in the common representation.
	Record = types.Record
	// Value is a field value in the common representation.
	Value = types.Value
	// Key is an opaque record key.
	Key = types.Key
	// Schema describes a relation's columns.
	Schema = types.Schema
	// Column describes one relation column.
	Column = types.Column
	// AttrList is a DDL attribute/value list.
	AttrList = core.AttrList
	// Expr is a predicate or scalar expression.
	Expr = expr.Expr
	// Box is a spatial rectangle for the R-tree access path.
	Box = expr.Box
	// Query is a planner query.
	Query = plan.Query
	// JoinSpec is a planner join clause.
	JoinSpec = plan.JoinSpec
	// Result is a statement result.
	Result = ddl.Result
	// Session executes SQL-ish statements.
	Session = ddl.Session
	// TriggerFunc is a trigger body.
	TriggerFunc = trigger.Func
	// TriggerEvent says which modification fired a trigger.
	TriggerEvent = trigger.Event
	// RelDesc is the extensible relation descriptor.
	RelDesc = core.RelDesc
	// Privilege is an authorization level for the uniform authorization
	// facility (db.Env.Authz).
	Privilege = core.Privilege
	// ForeignServer is a simulated foreign database for the remote
	// storage method.
	ForeignServer = remote.Server
)

// Value constructors, re-exported.
var (
	Int    = types.Int
	Float  = types.Float
	Str    = types.Str
	Bytes  = types.Bytes
	Bool   = types.Bool
	Null   = types.Null
	NewBox = expr.NewBox
)

// Config assembles a database.
type Config struct {
	// LogPath persists the common recovery log to a file; empty keeps it
	// in memory (still fully transactional, but not restart-durable).
	LogPath string
	// PoolFrames is the shared buffer pool capacity (default 256).
	PoolFrames int
	// DiskPath backs the buffer pool with a real file; empty uses an
	// in-memory disk with I/O accounting.
	DiskPath string
	// Recover replays the log at open (use with LogPath after a restart).
	Recover bool
	// CheckpointEvery takes a fuzzy checkpoint (and truncates the log head)
	// after that many log appends. 0 checkpoints only at Close; negative
	// disables checkpointing entirely.
	CheckpointEvery int
	// CommitBatchWindow, when positive, holds the group-commit leader open
	// for this long before the commit fsync so concurrent committers ride
	// the same log force. 0 still batches whatever is waiting when the
	// leader syncs, without added latency.
	CommitBatchWindow time.Duration
	// Faults arms the engine's crash-point fault injector (testing; see
	// internal/fault). Nil leaves every site disarmed.
	Faults *fault.Injector
	// TraceSample is the fraction of transactions that carry a detailed
	// span trace (0 disables sampling; 1 traces everything). Slow
	// transactions are always traced when SlowThreshold is set.
	TraceSample float64
	// SlowThreshold marks any span (and its transaction) slower than this
	// as slow: the trace is kept in the ring regardless of sampling and a
	// structured event line is written to SlowLog. 0 disables.
	SlowThreshold time.Duration
	// TraceRing is the completed-trace ring capacity (default 128).
	TraceRing int
	// SlowLog receives one JSON line per slow span/transaction; nil
	// discards them (the trace ring still keeps slow traces).
	SlowLog io.Writer
}

// DB is an open database.
type DB struct {
	// Env exposes the execution environment for direct generic-interface
	// use and for registering application extensions.
	Env *Env

	session *Session
	log     *wal.Log
	disk    pagefile.Disk
	ckptOff bool
}

// Open assembles a database from cfg.
func Open(cfg Config) (*DB, error) {
	var (
		log  *wal.Log
		disk pagefile.Disk
		err  error
	)
	if cfg.LogPath != "" {
		if log, err = wal.Open(cfg.LogPath); err != nil {
			return nil, err
		}
	}
	if cfg.DiskPath != "" {
		if disk, err = pagefile.OpenFileDisk(cfg.DiskPath); err != nil {
			return nil, err
		}
	}
	env := core.NewEnv(core.Config{
		Log:               log,
		Disk:              disk,
		PoolFrames:        cfg.PoolFrames,
		CommitBatchWindow: cfg.CommitBatchWindow,
		Faults:            cfg.Faults,
		TraceSample:       cfg.TraceSample,
		SlowThreshold:     cfg.SlowThreshold,
		TraceRing:         cfg.TraceRing,
		SlowLog:           cfg.SlowLog,
	})
	db := &DB{Env: env, log: log, disk: disk, ckptOff: cfg.CheckpointEvery < 0}
	db.session = ddl.NewSession(env)
	if cfg.Recover {
		if err := env.Recover(); err != nil {
			db.Close()
			return nil, fmt.Errorf("dmx: recovery: %w", err)
		}
	}
	if cfg.CheckpointEvery > 0 && log != nil {
		every := cfg.CheckpointEvery
		// Checked at every transaction end: the hook runs outside
		// transaction locks, and Checkpoint itself backs off (busy) when
		// concurrent writers still hold relation locks.
		env.Txns.OnEnd = func() {
			if log.AppendsSinceCheckpoint() >= every {
				_ = env.Checkpoint() // opportunistic; retried at next txn end
			}
		}
	}
	return db, nil
}

// Checkpoint takes a fuzzy checkpoint now: the active-transaction table
// and a replayable snapshot of every relation are appended to the log and
// the log head before them is truncated, bounding restart-redo work. It
// returns core.ErrCheckpointBusy (without harm) when concurrent writers
// hold relation locks.
func (db *DB) Checkpoint() error { return db.Env.Checkpoint() }

// Close takes a final checkpoint (unless disabled), flushes dirty buffer
// frames to the backing disk, and releases the database's file resources.
// In-flight transactions are not waited for.
func (db *DB) Close() error {
	var first error
	// The debug HTTP server (if serving) goes down first so no handler
	// observes the log or disk mid-teardown.
	if err := db.Env.Close(); err != nil {
		first = err
	}
	if db.log != nil && !db.ckptOff {
		// Best effort: a clean shutdown leaves a compact log, so the next
		// open replays only the closing snapshot. Busy (in-flight writers)
		// is not an error — the full log still recovers.
		if err := db.Env.Checkpoint(); err != nil && err != core.ErrCheckpointBusy && first == nil {
			first = err
		}
	}
	// Dirty frames must reach the disk before it is closed; without this
	// a file-backed database reopened without log replay reads the zero
	// pages FileDisk.Allocate wrote at extension time.
	if err := db.Env.Pool.FlushAll(); err != nil && first == nil {
		first = err
	}
	if db.log != nil {
		if err := db.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	if db.disk != nil {
		if err := db.disk.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Exec runs statements on the database's default session, returning the
// last statement's result. Use NewSession for concurrent sessions.
func (db *DB) Exec(stmts ...string) (*Result, error) {
	var res *Result
	for _, s := range stmts {
		var err error
		res, err = db.session.Exec(s)
		if err != nil {
			return nil, fmt.Errorf("dmx: %q: %w", s, err)
		}
	}
	return res, nil
}

// NewSession returns a fresh statement session (sessions are
// goroutine-confined; make one per worker).
func (db *DB) NewSession() *Session { return ddl.NewSession(db.Env) }

// Begin starts an explicit transaction for direct generic-interface use.
func (db *DB) Begin() *Txn { return db.Env.Begin() }

// BeginReadOnly starts a snapshot read-only transaction: it observes the
// state committed when it began, refuses modifications, and — on
// relations of MVCC storage methods (heap) — reads with zero
// lock-manager acquisitions, so it never blocks writers or waits for
// them.
func (db *DB) BeginReadOnly() *Txn { return db.Env.BeginReadOnly() }

// Relation opens the runtime handle for a relation by name.
func (db *DB) Relation(name string) (*Relation, error) {
	return db.Env.OpenRelationByName(name)
}

// Plan binds a planner query; the bound plan revalidates itself against
// DDL changes on every execution.
func (db *DB) Plan(q Query) (*plan.Bound, error) {
	return plan.New(db.Env).Plan(q)
}

// RegisterFunction installs a function callable from predicates.
func (db *DB) RegisterFunction(name string, fn func(args []Value) (Value, error)) {
	db.Env.Eval.Register(name, fn)
}

// RegisterTrigger installs a trigger body callable from trigger
// attachments (call=<name>).
func (db *DB) RegisterTrigger(name string, fn TriggerFunc) {
	trigger.Register(db.Env, name, fn)
}

// RegisterCheckPredicate registers a structured predicate under a token
// usable as the predicate= attribute of check-constraint attachments.
func (db *DB) RegisterCheckPredicate(token string, e *Expr) {
	check.RegisterPredicate(token, e)
}

// AttachForeignServer makes a foreign database reachable from relations
// created with USING remote WITH (server=<name>).
func (db *DB) AttachForeignServer(name string, srv *ForeignServer) {
	remotesm.AttachServer(db.Env, name, srv)
}

// AttachShardServer makes a shard backend reachable from partitioned
// relations created with USING part WITH (servers=<name>,...).
func (db *DB) AttachShardServer(name string, srv *ForeignServer) {
	partsm.AttachServer(db.Env, name, srv)
}

// Authorization levels, re-exported.
const (
	PrivRead  = core.PrivRead
	PrivWrite = core.PrivWrite
	PrivAdmin = core.PrivAdmin
)

// NewForeignServer creates a simulated foreign database with the given
// per-message latency.
func NewForeignServer(latency time.Duration) *ForeignServer {
	return remote.NewServer(latency)
}
