package main

import (
	"strings"
	"testing"

	"dmx"
)

func runScript(t *testing.T, script string) string {
	t.Helper()
	db, err := dmx.Open(dmx.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var out strings.Builder
	if err := run(db.Env, db.NewSession(), strings.NewReader(script), &out, false); err != nil {
		t.Fatalf("script failed: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

func TestScriptEndToEnd(t *testing.T) {
	out := runScript(t, `
-- comments and blank lines are skipped
CREATE TABLE emp (eno INT NOT NULL, name STRING, salary FLOAT) USING memory
CREATE INDEX byeno ON emp (eno)
INSERT INTO emp VALUES (1, 'ada', 100.0), (2, 'bob', 90.0)
BEGIN
UPDATE emp SET salary = salary + 10.0 WHERE eno = 2
SAVEPOINT sp
DELETE FROM emp WHERE eno = 1
ROLLBACK TO sp
COMMIT
SELECT eno, name, salary FROM emp ORDER BY eno
SELECT COUNT(*) FROM emp
`)
	if !strings.Contains(out, `1 | "ada" | 100`) {
		t.Fatalf("missing ada row:\n%s", out)
	}
	if !strings.Contains(out, `2 | "bob" | 100`) {
		t.Fatalf("bob raise missing:\n%s", out)
	}
	if !strings.Contains(out, "(2 rows") {
		t.Fatalf("row count missing:\n%s", out)
	}
	if !strings.Contains(out, "plan:") {
		t.Fatalf("plan missing:\n%s", out)
	}
}

func TestScriptContinuationLines(t *testing.T) {
	out := runScript(t, "CREATE TABLE t \\\n(id INT NOT NULL, \\\nv STRING) USING memory\nINSERT INTO t VALUES (1, 'x')\nSELECT * FROM t\n")
	if !strings.Contains(out, "(1 rows") {
		t.Fatalf("continuation failed:\n%s", out)
	}
}

func TestScriptErrorStopsBatchMode(t *testing.T) {
	db, _ := dmx.Open(dmx.Config{})
	defer db.Close()
	var out strings.Builder
	err := run(db.Env, db.NewSession(), strings.NewReader("NOT A STATEMENT\n"), &out, false)
	if err == nil {
		t.Fatal("batch mode should stop on error")
	}
}

func TestInteractiveModeContinuesAfterError(t *testing.T) {
	db, _ := dmx.Open(dmx.Config{})
	defer db.Close()
	var out strings.Builder
	script := "BROKEN\nCREATE TABLE t (id INT) USING memory\nSHOW TABLES\n"
	if err := run(db.Env, db.NewSession(), strings.NewReader(script), &out, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "error:") || !strings.Contains(out.String(), `"t"`) {
		t.Fatalf("interactive recovery failed:\n%s", out.String())
	}
}

func TestMetricsCommand(t *testing.T) {
	out := runScript(t, `
CREATE TABLE emp (eno INT NOT NULL, name STRING) USING heap
INSERT INTO emp VALUES (1, 'ada'), (2, 'bob')
SELECT * FROM emp
\metrics
`)
	for _, want := range []string{`"storage_methods"`, `"heap"`, `"lock"`, `"wal"`, `"buffer"`, `"totals"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("\\metrics output missing %s:\n%s", want, out)
		}
	}
}

func TestUnknownCommandErrors(t *testing.T) {
	db, _ := dmx.Open(dmx.Config{})
	defer db.Close()
	var out strings.Builder
	if err := run(db.Env, db.NewSession(), strings.NewReader("\\bogus\n"), &out, false); err == nil {
		t.Fatal("unknown backslash command should fail in batch mode")
	}
}
