// Command dmxcli is an interactive (or scripted) shell for the dmx
// engine's SQL-ish statement language.
//
// Usage:
//
//	dmxcli [-log wal.log] [-disk data.db] [-recover] [script.sql ...]
//
// With script files it executes them and exits; otherwise it reads
// statements from stdin, one per line (a trailing backslash continues a
// statement on the next line).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dmx"
)

func main() {
	logPath := flag.String("log", "", "persist the recovery log to this file")
	diskPath := flag.String("disk", "", "back the buffer pool with this file")
	doRecover := flag.Bool("recover", false, "replay the log at startup")
	flag.Parse()

	db, err := dmx.Open(dmx.Config{LogPath: *logPath, DiskPath: *diskPath, Recover: *doRecover})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmxcli:", err)
		os.Exit(1)
	}
	defer db.Close()
	session := db.NewSession()

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmxcli:", err)
				os.Exit(1)
			}
			if err := run(db.Env, session, f, os.Stdout, false); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "dmxcli:", err)
				os.Exit(1)
			}
			f.Close()
		}
		return
	}
	fmt.Println("dmx shell — statements end at end of line; \\ continues; \\metrics dumps counters; ctrl-D exits")
	if err := run(db.Env, session, os.Stdin, os.Stdout, true); err != nil {
		fmt.Fprintln(os.Stderr, "dmxcli:", err)
		os.Exit(1)
	}
}

// run executes statements from r, writing results to w. Lines starting
// with a backslash are shell commands (\metrics). In interactive mode
// errors are printed and the loop continues; in script mode the first
// error stops execution.
func run(env *dmx.Env, session *dmx.Session, r io.Reader, w io.Writer, interactive bool) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	for {
		if interactive {
			if session.InTxn() {
				fmt.Fprint(w, "dmx*> ")
			} else {
				fmt.Fprint(w, "dmx> ")
			}
		}
		if !scanner.Scan() {
			return scanner.Err()
		}
		line := scanner.Text()
		if cont := strings.HasSuffix(line, "\\"); cont {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			continue
		}
		pending.WriteString(line)
		stmt := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmt == "" || strings.HasPrefix(stmt, "--") {
			continue
		}
		if strings.HasPrefix(stmt, "\\") {
			if err := command(env, w, stmt); err != nil {
				if interactive {
					fmt.Fprintln(w, "error:", err)
					continue
				}
				return err
			}
			continue
		}
		res, err := session.Exec(stmt)
		if err != nil {
			if interactive {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			return fmt.Errorf("%q: %w", stmt, err)
		}
		printResult(w, res)
	}
}

// command dispatches a backslash shell command.
func command(env *dmx.Env, w io.Writer, stmt string) error {
	switch stmt {
	case "\\metrics":
		raw, err := json.MarshalIndent(env.MetricsSnapshot(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(raw))
		return nil
	default:
		return fmt.Errorf("unknown command %q (try \\metrics)", stmt)
	}
}

func printResult(w io.Writer, res *dmx.Result) {
	switch {
	case res.Columns != nil:
		fmt.Fprintln(w, strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(cells, " | "))
		}
		fmt.Fprintf(w, "(%d rows", len(res.Rows))
		if res.Explain != "" {
			fmt.Fprintf(w, "; plan: %s", res.Explain)
		}
		fmt.Fprintln(w, ")")
	case res.Message != "":
		fmt.Fprintln(w, res.Message)
	default:
		fmt.Fprintf(w, "(%d affected)\n", res.Affected)
	}
}
