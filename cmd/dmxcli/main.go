// Command dmxcli is an interactive (or scripted) shell for the dmx
// engine's SQL-ish statement language.
//
// Usage:
//
//	dmxcli [-log wal.log] [-disk data.db] [-recover] [script.sql ...]
//
// With script files it executes them and exits; otherwise it reads
// statements from stdin, one per line (a trailing backslash continues a
// statement on the next line).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dmx"
)

func main() {
	logPath := flag.String("log", "", "persist the recovery log to this file")
	diskPath := flag.String("disk", "", "back the buffer pool with this file")
	doRecover := flag.Bool("recover", false, "replay the log at startup")
	flag.Parse()

	db, err := dmx.Open(dmx.Config{LogPath: *logPath, DiskPath: *diskPath, Recover: *doRecover})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmxcli:", err)
		os.Exit(1)
	}
	defer db.Close()
	session := db.NewSession()

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmxcli:", err)
				os.Exit(1)
			}
			if err := run(db.Env, session, f, os.Stdout, false); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "dmxcli:", err)
				os.Exit(1)
			}
			f.Close()
		}
		return
	}
	fmt.Println("dmx shell — statements end at end of line; \\help lists shell commands; ctrl-D exits")
	if err := run(db.Env, session, os.Stdin, os.Stdout, true); err != nil {
		fmt.Fprintln(os.Stderr, "dmxcli:", err)
		os.Exit(1)
	}
}

// run executes statements from r, writing results to w. Lines starting
// with a backslash are shell commands (\metrics). In interactive mode
// errors are printed and the loop continues; in script mode the first
// error stops execution.
func run(env *dmx.Env, session *dmx.Session, r io.Reader, w io.Writer, interactive bool) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	for {
		if interactive {
			if session.InTxn() {
				fmt.Fprint(w, "dmx*> ")
			} else {
				fmt.Fprint(w, "dmx> ")
			}
		}
		if !scanner.Scan() {
			return scanner.Err()
		}
		line := scanner.Text()
		if cont := strings.HasSuffix(line, "\\"); cont {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			continue
		}
		pending.WriteString(line)
		stmt := strings.TrimSpace(pending.String())
		pending.Reset()
		if stmt == "" || strings.HasPrefix(stmt, "--") {
			continue
		}
		if strings.HasPrefix(stmt, "\\") {
			if err := command(env, session, w, stmt); err != nil {
				if interactive {
					fmt.Fprintln(w, "error:", err)
					continue
				}
				return err
			}
			continue
		}
		res, err := session.Exec(stmt)
		if err != nil {
			if interactive {
				fmt.Fprintln(w, "error:", err)
				continue
			}
			return fmt.Errorf("%q: %w", stmt, err)
		}
		printResult(w, res)
	}
}

// command dispatches a backslash shell command.
func command(env *dmx.Env, session *dmx.Session, w io.Writer, stmt string) error {
	fields := strings.Fields(stmt)
	switch fields[0] {
	case "\\help":
		fmt.Fprint(w, helpText)
		return nil
	case "\\stat":
		return statCommand(session, w, fields[1:])
	case "\\top":
		return topCommand(session, w, fields[1:])
	case "\\metrics":
		raw, err := json.MarshalIndent(env.MetricsSnapshot(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(raw))
		return nil
	case "\\trace":
		return traceCommand(env, w, fields[1:])
	case "\\serve":
		if len(fields) != 2 {
			return fmt.Errorf("usage: \\serve ADDR (e.g. \\serve 127.0.0.1:7654)")
		}
		addr, err := env.ServeDebug(fields[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "debug server on http://%s (/metrics /traces /healthz)\n", addr)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try \\help)", fields[0])
	}
}

const helpText = `shell commands:
  \help            this text
  \stat VIEW       dump a system relation (activity, relations, locks,
                   lsm, buffer, traces, history — or any sys.* name)
  \top [N]         top transactions by lock wait (default 10)
  \metrics         engine counters as JSON
  \trace ...       transaction tracer (\trace on|off|show)
  \serve ADDR      start the debug HTTP server
SQL statements run as typed; a trailing \ continues on the next line.
`

// statCommand dumps one system relation through the ordinary SQL path,
// so \stat shows exactly what a query over the view would.
func statCommand(session *dmx.Session, w io.Writer, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: \\stat VIEW (e.g. \\stat activity; see \\help)")
	}
	view := args[0]
	if !strings.Contains(view, ".") {
		view = "sys.stat_" + view
	}
	res, err := session.Exec("SELECT * FROM " + view)
	if err != nil {
		return err
	}
	printResult(w, res)
	return nil
}

// topCommand lists the in-flight transactions that have burned the most
// time waiting on locks — the first thing to look at when the engine
// feels stuck.
func topCommand(session *dmx.Session, w io.Writer, args []string) error {
	n := 10
	if len(args) > 0 {
		if _, err := fmt.Sscanf(args[0], "%d", &n); err != nil || n <= 0 {
			return fmt.Errorf("usage: \\top [N] (N >= 1)")
		}
	}
	res, err := session.Exec(fmt.Sprintf(
		"SELECT id, state, lock_waits, lock_wait_ns, rows_read, rows_written "+
			"FROM sys.stat_activity ORDER BY lock_wait_ns DESC LIMIT %d", n))
	if err != nil {
		return err
	}
	printResult(w, res)
	return nil
}

// traceCommand controls the environment's transaction tracer:
//
//	\trace            current sampling state and counters
//	\trace on [RATE]  sample every transaction, or the given fraction
//	\trace off        stop sampling (slow-trace capture stays on)
//	\trace show [MIN] dump the completed-trace ring as JSON, optionally
//	                  only traces at least MIN long (e.g. \trace show 10ms)
func traceCommand(env *dmx.Env, w io.Writer, args []string) error {
	if len(args) == 0 {
		fmt.Fprintln(w, env.Tracer.String())
		return nil
	}
	switch args[0] {
	case "on":
		rate := 1.0
		if len(args) > 1 {
			if _, err := fmt.Sscanf(args[1], "%g", &rate); err != nil || rate <= 0 || rate > 1 {
				return fmt.Errorf("bad sample rate %q (want a fraction in (0,1])", args[1])
			}
		}
		env.Tracer.SetSampleRate(rate)
		fmt.Fprintln(w, env.Tracer.String())
		return nil
	case "off":
		env.Tracer.SetSampleRate(0)
		fmt.Fprintln(w, env.Tracer.String())
		return nil
	case "show":
		var min time.Duration
		if len(args) > 1 {
			d, err := time.ParseDuration(args[1])
			if err != nil {
				return fmt.Errorf("bad min duration %q: %w", args[1], err)
			}
			min = d
		}
		traces := env.Tracer.Traces(min)
		raw, err := json.MarshalIndent(map[string]any{
			"stats":  env.Tracer.Stats(),
			"traces": traces,
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(raw))
		return nil
	default:
		return fmt.Errorf("usage: \\trace [on [RATE] | off | show [MIN]]")
	}
}

func printResult(w io.Writer, res *dmx.Result) {
	switch {
	case res.Columns != nil:
		fmt.Fprintln(w, strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(cells, " | "))
		}
		fmt.Fprintf(w, "(%d rows", len(res.Rows))
		if res.Explain != "" {
			fmt.Fprintf(w, "; plan: %s", res.Explain)
		}
		fmt.Fprintln(w, ")")
	case res.Message != "":
		fmt.Fprintln(w, res.Message)
	default:
		fmt.Fprintf(w, "(%d affected)\n", res.Affected)
	}
}
