// Command dmxbench regenerates the experiment tables of EXPERIMENTS.md.
//
// The paper (SIGMOD 1987) contains no quantitative tables — its two
// figures are architecture diagrams — so the experiment suite turns each
// performance claim in the text into a measured comparison (see DESIGN.md
// for the claim → experiment mapping). Figures 1 and 2 are reproduced as
// executable demonstrations by examples/quickstart and examples/bank.
//
// Usage:
//
//	dmxbench [-run E4] [-scale 1.0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dmx"
	"dmx/internal/core"
	"dmx/internal/expr"
	"dmx/internal/lock"
	"dmx/internal/plan"
	"dmx/internal/remote"
	"dmx/internal/rig"
	"dmx/internal/sm/partsm"
	"dmx/internal/sm/remotesm"
	"dmx/internal/txn"
	"dmx/internal/types"
	"dmx/internal/wal"

	_ "dmx/internal/att/aggmv"
	_ "dmx/internal/att/btreeix"
	"dmx/internal/att/check"
	_ "dmx/internal/att/hashidx"
	_ "dmx/internal/att/joinidx"
	_ "dmx/internal/att/refint"
	_ "dmx/internal/att/rtreeix"
	_ "dmx/internal/att/stats"
	_ "dmx/internal/att/unique"
	_ "dmx/internal/sm/appendsm"
	_ "dmx/internal/sm/btreesm"
	_ "dmx/internal/sm/heap"
	_ "dmx/internal/sm/memsm"
	_ "dmx/internal/sm/tempsm"
)

var scale = flag.Float64("scale", 1.0, "scale workload sizes")

func n(base int) int { return int(float64(base) * *scale) }

// best3 runs fn three times and returns the fastest run (reduces GC and
// scheduler noise in the scan-bound measurements).
func best3(fn func()) time.Duration {
	best := rig.Time(fn)
	for i := 0; i < 2; i++ {
		if d := rig.Time(fn); d < best {
			best = d
		}
	}
	return best
}

type experiment struct {
	id   string
	desc string
	run  func() []*rig.Table
}

func main() {
	runOnly := flag.String("run", "", "run only the experiment with this id (e.g. E4)")
	flag.Parse()

	experiments := []experiment{
		{"E1", "extension activation: procedure vectors vs alternatives", e1Dispatch},
		{"E2", "tuple-at-a-time join call volume", e2Join},
		{"E3", "bound plans vs re-translation per execution", e3BoundPlans},
		{"E4", "early predicate evaluation (filter pushdown)", e4Filter},
		{"E5", "attached-procedure overhead per modification", e5Attachments},
		{"E6", "access path selection by extension cost estimates", e6AccessPaths},
		{"E7", "alternative relation storage methods", e7StorageMethods},
		{"E8", "veto undo and partial rollback cost", e8VetoRollback},
		{"E9", "immediate vs deferred constraint checking", e9Deferred},
		{"E10", "cascading deletes through attachment recursion", e10Cascade},
		{"E11", "record-structured relation descriptor overhead", e11Descriptor},
		{"E12", "common lock manager under contention", e12Locking},
		{"MT", "concurrent commit throughput: group commit and sharded hot paths", mtGroupCommit},
		{"SELFOBS", "per-transaction resource accounting: overhead with counters on vs off", selfObs},
		{"MVCC", "snapshot reads: locked vs lock-free read-only throughput", mvccReads},
		{"INGEST", "LSM tiered ingest: sustained writes, tombstones, bloom-filtered point reads", ingestLSM},
		{"PAR", "partitioned parallel scan and hash join vs serial execution", parExec},
		{"PART", "hash-sharded relations: routed access, scatter-gather, two-phase commit", partRouting},
		{"A1", "ablation: skipping index maintenance when no indexed field changed", a1SkipUnchanged},
		{"A2", "ablation: remote scan batch size", a2RemoteBatch},
		{"A3", "ablation: ORDER BY via ordered access path vs scan + sort", a3OrderedAccess},
		{"OBS", "engine-wide observability snapshot after a mixed workload", obsSnapshot},
		{"TRACE", "span-tracing overhead at off / 1% / 100% sampling", traceOverhead},
		{"CRASH", "restart replay cost vs checkpoint interval", crashRecovery},
	}
	for _, ex := range experiments {
		if *runOnly != "" && !strings.EqualFold(*runOnly, ex.id) {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", ex.id, ex.desc)
		for _, table := range ex.run() {
			table.Fprint(os.Stdout)
		}
		runtime.GC() // isolate experiments from each other's garbage
	}
}

// --- E1: extension activation ---

func e1Dispatch() []*rig.Table {
	const iters = 5_000_000
	reg := core.NewRegistry()
	count := 0
	validate := func(*types.Schema, core.AttrList) error { count++; return nil }
	for id := core.SMID(1); id <= 6; id++ {
		reg.RegisterStorageMethod(&core.StorageOps{ID: id, Name: fmt.Sprintf("sm%d", id), ValidateAttrs: validate})
	}
	byMap := map[core.SMID]*core.StorageOps{}
	for id := core.SMID(1); id <= 6; id++ {
		byMap[id] = reg.StorageOps(id)
	}
	byName := map[string]*core.StorageOps{}
	for id := core.SMID(1); id <= 6; id++ {
		ops := reg.StorageOps(id)
		byName[ops.Name] = ops
	}

	t := rig.NewTable("E1 — activating the extension operation for a descriptor (per call)",
		"dispatch mechanism", "ns/op", "relative")
	t.Note = `"vectors of routine entry points ... makes the activation of the appropriate extension quite efficient"`

	direct := reg.StorageOps(2).ValidateAttrs
	dDirect := rig.Time(func() {
		for i := 0; i < iters; i++ {
			direct(nil, nil)
		}
	})
	dVector := rig.Time(func() {
		for i := 0; i < iters; i++ {
			reg.StorageOps(core.SMID(1+i%6)).ValidateAttrs(nil, nil)
		}
	})
	dMap := rig.Time(func() {
		for i := 0; i < iters; i++ {
			byMap[core.SMID(1+i%6)].ValidateAttrs(nil, nil)
		}
	})
	names := []string{"sm1", "sm2", "sm3", "sm4", "sm5", "sm6"}
	dName := rig.Time(func() {
		for i := 0; i < iters; i++ {
			byName[names[i%6]].ValidateAttrs(nil, nil)
		}
	})
	rel := func(d time.Duration) float64 { return float64(d) / float64(dVector) }
	t.Add("direct call (no selection)", float64(dDirect.Nanoseconds())/iters, rel(dDirect))
	t.Add("procedure vector (array index)", float64(dVector.Nanoseconds())/iters, rel(dVector))
	t.Add("map by small-int id", float64(dMap.Nanoseconds())/iters, rel(dMap))
	t.Add("map by extension name", float64(dName.Nanoseconds())/iters, rel(dName))
	_ = count
	return []*rig.Table{t}
}

// --- E2: tuple-at-a-time join call volume ---

func e2Join() []*rig.Table {
	outerN, innerN := n(2000), 10
	t := rig.NewTable("E2 — join of two moderate relations: extension calls and time",
		"strategy", "result rows", "extension calls", "time", "per row")
	t.Note = `"the join of two moderate sized relations can easily result in thousands of calls to storage method and attachment routines"`

	type strat struct {
		name  string
		prep  func(env *core.Env)
		spec  plan.JoinSpec
		force string // ForceJoin: keep each row on its named strategy
	}
	strats := []strat{
		{"nested loop (rescan inner)", nil,
			plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}}, "nl"},
		// The join probes dept's field 0 (its records carry eno == dno), so
		// the index must cover eno; on dno the probe path is unusable and
		// the row would silently degrade to a nested loop.
		{"index NL (B-tree probe)", func(env *core.Env) {
			rig.MustAttach(env, "dept", "btree", core.AttrList{"on": "eno"})
		}, plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}}, "indexnl"},
		{"hash join (build inner)", nil,
			plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}}, "hash"},
		{"join index", func(env *core.Env) {
			rig.MustAttach(env, "emp", "joinindex", core.AttrList{"name": "ed", "on": "dno", "peer": "dept"})
			rig.MustAttach(env, "dept", "joinindex", core.AttrList{"name": "ed", "on": "dno", "peer": "emp"})
		}, plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 0, Fields: []int{1}, JoinIndex: "ed"}, ""},
	}
	for _, s := range strats {
		env := core.NewEnv(core.Config{})
		emp := rig.MustCreate(env, "emp", "heap", nil)
		rig.Load(env, emp, outerN, 20)
		dept := rig.MustCreate(env, "dept", "memory", nil)
		rig.WithTxn(env, func(tx *txn.Txn) {
			for i := 0; i < innerN; i++ {
				dept.Insert(tx, types.Record{types.Int(int64(i)), types.Int(int64(i)), types.Float(0), types.Str("d")})
			}
		})
		if s.prep != nil {
			s.prep(env)
		}
		p := plan.New(env)
		spec := s.spec
		b, err := p.Plan(plan.Query{Table: "emp", Fields: []int{0}, Join: &spec, ForceJoin: s.force})
		if err != nil {
			panic(err)
		}
		callsBefore := env.Metrics.SMCalls.Load() + env.Metrics.AttCalls.Load() +
			env.Metrics.Fetches.Load() + env.Metrics.Scans.Load()
		rows := 0
		d := rig.Time(func() {
			tx := env.Begin()
			rs, err := b.Execute(tx)
			if err != nil {
				panic(err)
			}
			for {
				_, ok, err := rs.Next()
				if err != nil {
					panic(err)
				}
				if !ok {
					break
				}
				rows++
			}
			rs.Close()
			tx.Commit()
		})
		calls := env.Metrics.SMCalls.Load() + env.Metrics.AttCalls.Load() +
			env.Metrics.Fetches.Load() + env.Metrics.Scans.Load() - callsBefore
		t.Add(s.name, rows, calls, d, rig.PerOp(d, rows))
	}
	return []*rig.Table{t}
}

// --- E3: bound plans ---

func e3BoundPlans() []*rig.Table {
	rows := n(5000)
	execs := n(2000)
	env := core.NewEnv(core.Config{})
	emp := rig.MustCreate(env, "emp", "memory", nil)
	rig.Load(env, emp, rows, 20)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "byeno", "on": "eno", "unique": "true"})

	q := plan.Query{Table: "emp", Fields: []int{2},
		Filter: expr.Eq(expr.Field(0), expr.Const(types.Int(123)))}
	p := plan.New(env)

	runPlan := func(b *plan.Bound) {
		tx := env.Begin()
		rs, err := b.Execute(tx)
		if err != nil {
			panic(err)
		}
		for {
			_, ok, err := rs.Next()
			if err != nil {
				panic(err)
			}
			if !ok {
				break
			}
		}
		rs.Close()
		tx.Commit()
	}

	bound, err := p.Plan(q)
	if err != nil {
		panic(err)
	}
	dBound := rig.Time(func() {
		for i := 0; i < execs; i++ {
			runPlan(bound)
		}
	})
	dReplan := rig.Time(func() {
		for i := 0; i < execs; i++ {
			b, err := p.Plan(q)
			if err != nil {
				panic(err)
			}
			runPlan(b)
		}
	})

	t := rig.NewTable("E3 — executing a saved plan vs re-translating per execution",
		"mode", "executions", "total", "per execution", "relative")
	t.Note = `"retain the translations of queries ... avoids the non-trivial costs of accessing the relation descriptions and optimizing the query at execution time"`
	t.Add("bound plan, reused", execs, dBound, rig.PerOp(dBound, execs), 1.0)
	t.Add("plan + execute each time", execs, dReplan, rig.PerOp(dReplan, execs),
		float64(dReplan)/float64(dBound))

	// Invalidation: dropping the index forces exactly one re-translation.
	rig.WithTxn(env, func(tx *txn.Txn) {
		if _, err := env.DropAttachment(tx, "emp", "btree", core.AttrList{"name": "byeno"}); err != nil {
			panic(err)
		}
	})
	runPlan(bound)
	t2 := rig.NewTable("E3b — automatic re-translation after DDL invalidates the plan",
		"event", "re-translations", "new plan")
	t2.Add("DROP INDEX then next execution", bound.Replans, bound.Explain())
	return []*rig.Table{t, t2}
}

// --- E4: filter pushdown ---

func e4Filter() []*rig.Table {
	rows := n(30000)
	env := core.NewEnv(core.Config{PoolFrames: 64})
	emp := rig.MustCreate(env, "emp", "heap", nil)
	rig.Load(env, emp, rows, 100)

	t := rig.NewTable("E4 — predicate evaluated in the buffer pool vs after copy-out",
		"selectivity", "matches", "pushdown", "copy-then-filter", "speedup")
	t.Note = `"allow filter predicates to be evaluated while the field values from the relation storage or access path are still in the buffer pool"`

	for _, sel := range []struct {
		label string
		limit int64
	}{
		{"0.1%", int64(rows / 1000)},
		{"1%", int64(rows / 100)},
		{"10%", int64(rows / 10)},
		{"100%", int64(rows)},
	} {
		filter := expr.Lt(expr.Field(0), expr.Const(types.Int(sel.limit)))
		matches := 0
		dPush := best3(func() {
			tx := env.Begin()
			scan, err := emp.OpenScan(tx, core.ScanOptions{Filter: filter, Fields: []int{0}})
			if err != nil {
				panic(err)
			}
			matches = rig.Drain(scan)
			tx.Commit()
		})
		ev := env.Eval
		matches2 := 0
		dCopy := best3(func() {
			matches2 = 0
			tx := env.Begin()
			scan, err := emp.OpenScan(tx, core.ScanOptions{})
			if err != nil {
				panic(err)
			}
			for {
				_, rec, ok, err := scan.Next()
				if err != nil {
					panic(err)
				}
				if !ok {
					break
				}
				// The "application" filters after every record has been
				// copied out of the storage method.
				keep, err := ev.EvalBool(filter, rec, nil)
				if err != nil {
					panic(err)
				}
				if keep {
					matches2++
				}
			}
			tx.Commit()
		})
		if matches != matches2 {
			panic(fmt.Sprintf("pushdown disagreement: %d vs %d", matches, matches2))
		}
		t.Add(sel.label, matches, dPush, dCopy, float64(dCopy)/float64(dPush))
	}
	return []*rig.Table{t}
}

// --- E5: attachment overhead ---

func e5Attachments() []*rig.Table {
	inserts := n(5000)
	check.RegisterPredicate("e5pos", expr.Ge(expr.Field(0), expr.Const(types.Int(0))))
	steps := []struct {
		label string
		att   string
		attrs core.AttrList
	}{
		{"+ btree index (dno)", "btree", core.AttrList{"name": "i1", "on": "dno"}},
		{"+ btree index (salary)", "btree", core.AttrList{"name": "i2", "on": "salary"}},
		{"+ hash index (eno)", "hash", core.AttrList{"name": "h1", "on": "eno"}},
		{"+ unique (eno)", "unique", core.AttrList{"name": "u1", "on": "eno"}},
		{"+ check constraint", "check", core.AttrList{"name": "c1", "predicate": "e5pos"}},
		{"+ stats", "stats", nil},
		{"+ aggregate (salary by dno)", "aggregate", core.AttrList{"name": "a1", "group": "dno", "value": "salary"}},
	}

	t := rig.NewTable("E5 — insert cost as attachments accumulate",
		"configuration", "attachment types", "per insert", "attached calls/insert")
	t.Note = "attachment updates are performed implicitly as side effects of relation modification"

	env := core.NewEnv(core.Config{})
	emp := rig.MustCreate(env, "emp", "memory", nil)
	measure := func(label string, natt int) {
		callsBefore := env.Metrics.AttCalls.Load()
		d := rig.Time(func() { rig.Load(env, emp, inserts, 20) })
		calls := env.Metrics.AttCalls.Load() - callsBefore
		t.Add(label, natt, rig.PerOp(d, inserts), float64(calls)/float64(inserts))
		// Reset contents between measurements.
		rig.WithTxn(env, func(tx *txn.Txn) {
			scan, err := emp.OpenScan(tx, core.ScanOptions{Fields: []int{}})
			if err != nil {
				panic(err)
			}
			var keys []types.Key
			for {
				k, _, ok, err := scan.Next()
				if err != nil {
					panic(err)
				}
				if !ok {
					break
				}
				keys = append(keys, k)
			}
			scan.Close()
			for _, k := range keys {
				if err := emp.Delete(tx, k); err != nil {
					panic(err)
				}
			}
		})
	}
	measure("bare relation", 0)
	for i, s := range steps {
		rig.MustAttach(env, "emp", s.att, s.attrs)
		emp, _ = env.OpenRelationByName("emp") // refresh descriptor
		measure(s.label, i+1)
	}
	return []*rig.Table{t}
}

// --- E6: access path selection ---

func e6AccessPaths() []*rig.Table {
	rows := n(50000)
	env := core.NewEnv(core.Config{PoolFrames: 2048})
	emp := rig.MustCreate(env, "emp", "heap", nil)
	rig.Load(env, emp, rows, 40)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "byeno", "on": "eno", "unique": "true"})
	rig.MustAttach(env, "emp", "hash", core.AttrList{"name": "bydno", "on": "dno"})

	p := plan.New(env)
	t := rig.NewTable("E6 — planner choice vs forced storage-method scan",
		"query", "chosen plan", "chosen", "scan", "speedup")
	t.Note = `"a B-tree access path will return a low cost if there is a predicate on the key of the B-tree ... the R-tree access path will recognize the ENCLOSES predicate"`

	cases := []struct {
		label  string
		filter *expr.Expr
	}{
		{"point: eno = K", expr.Eq(expr.Field(0), expr.Const(types.Int(int64(rows/2))))},
		{"range: eno < N/100", expr.Lt(expr.Field(0), expr.Const(types.Int(int64(rows/100))))},
		{"equality: dno = 3 (10%)", expr.Eq(expr.Field(1), expr.Const(types.Int(3)))},
		{"non-indexed: salary > N-10", expr.Gt(expr.Field(2), expr.Const(types.Float(float64(rows-10))))},
	}
	for _, c := range cases {
		b, err := p.Plan(plan.Query{Table: "emp", Fields: []int{0}, Filter: c.filter})
		if err != nil {
			panic(err)
		}
		dChosen := rig.Time(func() {
			tx := env.Begin()
			rs, _ := b.Execute(tx)
			for {
				_, ok, err := rs.Next()
				if err != nil {
					panic(err)
				}
				if !ok {
					break
				}
			}
			rs.Close()
			tx.Commit()
		})
		dScan := rig.Time(func() {
			tx := env.Begin()
			scan, err := emp.OpenScan(tx, core.ScanOptions{Filter: c.filter, Fields: []int{0}})
			if err != nil {
				panic(err)
			}
			rig.Drain(scan)
			tx.Commit()
		})
		t.Add(c.label, b.Explain(), dChosen, dScan, float64(dScan)/float64(dChosen))
	}

	// Spatial: R-tree vs scan on a parcels table.
	spatialRows := n(20000)
	senv := core.NewEnv(core.Config{})
	s := types.MustSchema(
		types.Column{Name: "id", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "shape", Kind: types.KindBytes},
	)
	rig.WithTxn(senv, func(tx *txn.Txn) {
		if _, err := senv.CreateRelation(tx, "parcels", s, "memory", nil); err != nil {
			panic(err)
		}
	})
	parcels, _ := senv.OpenRelationByName("parcels")
	side := 1
	for side*side < spatialRows {
		side++
	}
	rig.WithTxn(senv, func(tx *txn.Txn) {
		for i := 0; i < spatialRows; i++ {
			x, y := float64(i%side)*10, float64(i/side)*10
			if _, err := parcels.Insert(tx, types.Record{
				types.Int(int64(i)), expr.NewBox(x, y, x+2, y+2).Value(),
			}); err != nil {
				panic(err)
			}
		}
	})
	rig.MustAttach(senv, "parcels", "rtree", core.AttrList{"on": "shape"})
	query := expr.NewBox(0, 0, float64(side)/10, float64(side)/10)
	spFilter := expr.Encloses(expr.Const(query.Value()), expr.Field(1))
	sp := plan.New(senv)
	b, err := sp.Plan(plan.Query{Table: "parcels", Fields: []int{0}, Filter: spFilter})
	if err != nil {
		panic(err)
	}
	dChosen := rig.Time(func() {
		tx := senv.Begin()
		rs, _ := b.Execute(tx)
		for {
			_, ok, err := rs.Next()
			if err != nil {
				panic(err)
			}
			if !ok {
				break
			}
		}
		rs.Close()
		tx.Commit()
	})
	parcels, _ = senv.OpenRelationByName("parcels")
	dScan := rig.Time(func() {
		tx := senv.Begin()
		scan, err := parcels.OpenScan(tx, core.ScanOptions{Filter: spFilter, Fields: []int{0}})
		if err != nil {
			panic(err)
		}
		rig.Drain(scan)
		tx.Commit()
	})
	t.Add("spatial: ENCLOSES window", b.Explain(), dChosen, dScan, float64(dScan)/float64(dChosen))
	return []*rig.Table{t}
}

// --- E7: storage methods ---

func e7StorageMethods() []*rig.Table {
	rows := n(10000)
	fetches := n(2000)

	t := rig.NewTable("E7 — the same workload across relation storage methods",
		"storage method", "insert/op", "fetch-by-key/op", "full scan", "page I/Os", "remote msgs")
	t.Note = "alternative implementations of the common relation abstraction (heap, B-tree, main-memory, publishing, foreign)"

	type smCase struct {
		name  string
		sm    string
		attrs core.AttrList
		setup func(env *core.Env)
	}
	var fed *remote.Server
	cases := []smCase{
		{"heap", "heap", nil, nil},
		{"btree (key=eno)", "btree", core.AttrList{"key": "eno"}, nil},
		{"memory", "memory", nil, nil},
		{"temp (unlogged)", "temp", nil, nil},
		{"append (lsm)", "append", nil, nil},
		{"remote (20µs RTT)", "remote", core.AttrList{"server": "fed"}, func(env *core.Env) {
			fed = remote.NewServer(20 * time.Microsecond)
			remotesm.AttachServer(env, "fed", fed)
		}},
	}
	for _, c := range cases {
		env := core.NewEnv(core.Config{PoolFrames: 1024})
		if c.setup != nil {
			c.setup(env)
		}
		rel := rig.MustCreate(env, "t", c.sm, c.attrs)
		remoteRows := rows
		if c.sm == "remote" {
			remoteRows = rows / 10 // round trips make full size tedious
		}
		var keys []types.Key
		dInsert := rig.Time(func() { keys = rig.Load(env, rel, remoteRows, 40) })
		dFetch := rig.Time(func() {
			tx := env.Begin()
			for i := 0; i < fetches; i++ {
				if _, err := rel.Fetch(tx, keys[i%len(keys)], []int{0}, nil); err != nil {
					panic(err)
				}
			}
			tx.Commit()
		})
		dScan := rig.Time(func() {
			tx := env.Begin()
			scan, err := rel.OpenScan(tx, core.ScanOptions{Fields: []int{0}})
			if err != nil {
				panic(err)
			}
			rig.Drain(scan)
			tx.Commit()
		})
		ios := env.Pool.Disk().Stats()
		msgs := int64(0)
		if fed != nil && c.sm == "remote" {
			msgs = fed.Messages.Load()
		}
		t.Add(c.name, rig.PerOp(dInsert, remoteRows), rig.PerOp(dFetch, fetches), dScan,
			ios.Reads+ios.Writes, msgs)
	}
	return []*rig.Table{t}
}

// --- INGEST: LSM tiered ingest ---

// ingestLSM measures the append storage method's LSM shape against the
// in-place heap on a write-heavy workload: bulk ingest, scattered
// updates and deletes (tombstones on the LSM side), then random
// point reads across the accumulated runs. A second table reports the
// LSM internals — flush and merge counts, the bounded memtable
// high-water, resident runs, and the bloom filter's skip ratio on the
// point-read phase.
func ingestLSM() []*rig.Table {
	rows := n(30000)
	churn := rows / 10
	points := n(5000)
	const memBytes = 64 * 1024

	t := rig.NewTable("INGEST — LSM tiered ingest vs in-place heap",
		"storage method", "insert/op", "update/op", "delete/op", "point read/op", "full scan")
	t.Note = fmt.Sprintf("%d inserts (64B pad), %d updates, %d deletes, %d random fetches; append runs a %dKiB memtable, fanout 4, inline compaction",
		rows, churn, churn, points, memBytes/1024)

	var lsm *core.Env
	cases := []struct {
		name  string
		sm    string
		attrs core.AttrList
	}{
		{"heap", "heap", nil},
		{"append (lsm)", "append", core.AttrList{
			"memtable": strconv.Itoa(memBytes), "fanout": "4", "compact": "sync"}},
	}
	for _, c := range cases {
		env := core.NewEnv(core.Config{PoolFrames: 1024})
		rel := rig.MustCreate(env, "t", c.sm, c.attrs)
		var keys []types.Key
		dInsert := rig.Time(func() { keys = rig.Load(env, rel, rows, 64) })
		dUpdate := rig.Time(func() {
			tx := env.Begin()
			// Stride-7 targets stay below 0.7·rows, so they never collide
			// with the deleted tail.
			for i := 0; i < churn; i++ {
				k := keys[(i*7)%rows]
				if _, err := rel.Update(tx, k, rig.EmpRecord(i, 64)); err != nil {
					panic(err)
				}
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
		})
		dDelete := rig.Time(func() {
			tx := env.Begin()
			for i := 0; i < churn; i++ {
				if err := rel.Delete(tx, keys[rows-1-i]); err != nil {
					panic(err)
				}
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
		})
		live := rows - churn
		dPoint := rig.Time(func() {
			tx := env.Begin()
			for i := 0; i < points; i++ {
				if _, err := rel.Fetch(tx, keys[(i*13)%live], []int{0}, nil); err != nil {
					panic(err)
				}
			}
			tx.Commit()
		})
		dScan := rig.Time(func() {
			tx := env.Begin()
			scan, err := rel.OpenScan(tx, core.ScanOptions{Fields: []int{0}})
			if err != nil {
				panic(err)
			}
			if got := rig.Drain(scan); got != live {
				panic(fmt.Sprintf("scan saw %d records, want %d", got, live))
			}
			tx.Commit()
		})
		t.Add(c.name, rig.PerOp(dInsert, rows), rig.PerOp(dUpdate, churn),
			rig.PerOp(dDelete, churn), rig.PerOp(dPoint, points), dScan)
		if c.sm == "append" {
			// A closing major compaction folds every run into one, retiring
			// the delete tombstones the churn phase wrote.
			if err := rel.Storage().(interface{ CompactNow() error }).CompactNow(); err != nil {
				panic(err)
			}
			lsm = env
		}
	}

	s := lsm.Obs.Snapshot().LSM
	t2 := rig.NewTable("INGEST — LSM internals for the run above",
		"metric", "value")
	t2.Note = "the memtable high-water stays at the configured bound; blooms cut most per-run probes on point reads"
	t2.Add("memtable flushes", s.Flushes)
	t2.Add("entries flushed", s.FlushedEntries)
	t2.Add("merge rounds", s.Compactions)
	t2.Add("runs merged away", s.CompactedRuns)
	t2.Add("tombstones dropped (closing major merge)", s.TombstonesDropped)
	t2.Add("memtable bytes (high-water)", s.MemtableBytesMax)
	t2.Add("resident runs (now / high-water)", fmt.Sprintf("%d / %d", s.Runs, s.RunsMax))
	t2.Add("bloom probes (point-read phase)", s.BloomProbes)
	t2.Add("bloom skip ratio", fmt.Sprintf("%.3f", s.BloomSkipRatio))
	t2.Add("bloom false positives", s.BloomFalsePositives)
	return []*rig.Table{t, t2}
}

// --- E8: veto and partial rollback ---

func e8VetoRollback() []*rig.Table {
	check.RegisterPredicate("e8pos", expr.Ge(expr.Field(0), expr.Const(types.Int(0))))
	env := core.NewEnv(core.Config{})
	rig.MustCreate(env, "emp", "memory", nil)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i1", "on": "dno"})
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i2", "on": "salary"})
	rig.MustAttach(env, "emp", "stats", nil)
	// The check constraint has the highest attachment id among these, so a
	// veto fires after the storage method and both indexes applied.
	rig.MustAttach(env, "emp", "check", core.AttrList{"name": "pos", "predicate": "e8pos"})
	emp, _ := env.OpenRelationByName("emp")

	batch := n(2000)
	good := rig.Time(func() {
		rig.WithTxn(env, func(tx *txn.Txn) {
			for i := 0; i < batch; i++ {
				if _, err := emp.Insert(tx, rig.EmpRecord(i, 20)); err != nil {
					panic(err)
				}
			}
		})
	})
	vetoed := rig.Time(func() {
		rig.WithTxn(env, func(tx *txn.Txn) {
			for i := 0; i < batch; i++ {
				rec := rig.EmpRecord(i+batch, 20)
				rec[0] = types.Int(-1) // violates the constraint
				if _, err := emp.Insert(tx, rec); err == nil {
					panic("bad insert accepted")
				}
			}
		})
	})
	t := rig.NewTable("E8 — cost of a vetoed modification (storage + 3 attachments undone by the log)",
		"outcome", "per modification", "relative")
	t.Note = `"any attachment can abort the relation operation ... the common recovery log is used to drive the storage method and attachment implementations to undo the partial effects"`
	t.Add("accepted insert", rig.PerOp(good, batch), 1.0)
	t.Add("vetoed insert (undo via log)", rig.PerOp(vetoed, batch), float64(vetoed)/float64(good))

	// Partial rollback cost vs amount of work undone.
	t2 := rig.NewTable("E8b — partial rollback to a savepoint",
		"records undone", "rollback time", "per record")
	for _, m := range []int{10, 100, 1000, 10000} {
		m := n(m)
		tx := env.Begin()
		if _, err := tx.Savepoint("sp"); err != nil {
			panic(err)
		}
		for i := 0; i < m; i++ {
			if _, err := emp.Insert(tx, rig.EmpRecord(1_000_000+i, 20)); err != nil {
				panic(err)
			}
		}
		d := rig.Time(func() {
			if err := tx.RollbackTo("sp"); err != nil {
				panic(err)
			}
		})
		tx.Commit()
		t2.Add(m, d, rig.PerOp(d, m))
	}
	return []*rig.Table{t, t2}
}

// --- E9: deferred constraint checking ---

func e9Deferred() []*rig.Table {
	parents, children := 200, n(5000)
	t := rig.NewTable("E9 — immediate vs deferred referential checking (batch insert)",
		"timing", "children", "checks run", "total", "per child")
	t.Note = `"certain integrity constraints cannot be evaluated when a single modification occurs but must be evaluated after all of the modifications have been made"`

	for _, timing := range []string{"immediate", "deferred"} {
		env := core.NewEnv(core.Config{})
		dept := rig.MustCreate(env, "dept", "memory", nil)
		rig.WithTxn(env, func(tx *txn.Txn) {
			for i := 0; i < parents; i++ {
				dept.Insert(tx, rig.EmpRecord(i, 4))
			}
		})
		rig.MustCreate(env, "emp", "memory", nil)
		rig.MustAttach(env, "emp", "refint", core.AttrList{
			"name": "fk", "role": "child", "on": "dno",
			"peer": "dept", "peerkey": "dno", "timing": timing,
		})
		emp, _ := env.OpenRelationByName("emp")
		scansBefore := env.Metrics.Scans.Load()
		d := rig.Time(func() {
			rig.WithTxn(env, func(tx *txn.Txn) {
				for i := 0; i < children; i++ {
					if _, err := emp.Insert(tx, rig.EmpRecord(i, 4)); err != nil {
						panic(err)
					}
				}
			})
		})
		checks := env.Metrics.Scans.Load() - scansBefore
		t.Add(timing, children, checks, d, rig.PerOp(d, children))
	}
	return []*rig.Table{t}
}

// --- E10: cascading deletes ---

func e10Cascade() []*rig.Table {
	const fanout = 4
	t := rig.NewTable("E10 — cascading delete down a referential chain (fanout 4)",
		"depth", "records deleted", "time", "per record")
	t.Note = `"attachments may access or modify other data in the database ... in this manner, modifications may cascade"`

	for depth := 1; depth <= 6; depth++ {
		env := core.NewEnv(core.Config{})
		// Relations r0 (root) .. r<depth>, each cascading into the next.
		for level := 0; level <= depth; level++ {
			rig.MustCreate(env, fmt.Sprintf("r%d", level), "memory", nil)
		}
		for level := 0; level < depth; level++ {
			rig.MustAttach(env, fmt.Sprintf("r%d", level), "refint", core.AttrList{
				"name": "cascade", "role": "parent", "on": "eno",
				"peer": fmt.Sprintf("r%d", level+1), "peerkey": "dno", "action": "cascade",
			})
		}
		// Populate: level L has fanout^L records; record i at level L has
		// parent i/fanout at level L-1 (via dno).
		var rootKey types.Key
		total := 0
		rig.WithTxn(env, func(tx *txn.Txn) {
			count := 1
			for level := 0; level <= depth; level++ {
				rel, _ := env.OpenRelationByName(fmt.Sprintf("r%d", level))
				for i := 0; i < count; i++ {
					rec := types.Record{
						types.Int(int64(i)), types.Int(int64(i / fanout)),
						types.Float(0), types.Str(""),
					}
					k, err := rel.Insert(tx, rec)
					if err != nil {
						panic(err)
					}
					if level == 0 {
						rootKey = k
					}
				}
				total += count
				count *= fanout
			}
		})
		root, _ := env.OpenRelationByName("r0")
		var d time.Duration
		rig.WithTxn(env, func(tx *txn.Txn) {
			d = rig.Time(func() {
				if err := root.Delete(tx, rootKey); err != nil {
					panic(err)
				}
			})
		})
		t.Add(depth, total, d, rig.PerOp(d, total))
	}
	return []*rig.Table{t}
}

// --- E11: descriptor overhead ---

func e11Descriptor() []*rig.Table {
	t := rig.NewTable("E11 — composite relation descriptor size and decode cost",
		"attachment types present", "encoded bytes", "decode ns/op")
	t.Note = `"this method ... effectively limits the number of different attachment types to a few dozen without beginning to incur significant storage overhead" (absent types cost two bytes each here)`

	base := &core.RelDesc{RelID: 7, Name: "emp", Schema: rig.EmpSchema(), SM: core.SMHeap,
		SMDesc: []byte{1, 2, 3, 4}}
	for present := 0; present <= 10; present += 2 {
		rd := base.Clone()
		for i := 0; i < present; i++ {
			rd.AttDesc[core.AttID(i+1)] = []byte(strings.Repeat("d", 24))
		}
		enc := rd.AppendEncode(nil)
		const iters = 200000
		d := rig.Time(func() {
			for i := 0; i < iters; i++ {
				if _, _, err := core.DecodeRelDesc(enc); err != nil {
					panic(err)
				}
			}
		})
		t.Add(present, len(enc), float64(d.Nanoseconds())/iters)
	}
	return []*rig.Table{t}
}

// --- E12: locking ---

func e12Locking() []*rig.Table {
	perTxn := 4
	txns := n(2000)
	t := rig.NewTable("E12 — lock manager throughput (X locks, 4 per txn)",
		"goroutines", "transactions", "total", "txn/s")
	t.Note = "all storage method and attachment implementations share the locking-based concurrency controller"

	for _, g := range []int{1, 2, 4, 8} {
		mgr := lock.NewManager()
		nextID := int64(0)
		d := rig.Time(func() {
			done := make(chan struct{}, g)
			for w := 0; w < g; w++ {
				go func(w int) {
					defer func() { done <- struct{}{} }()
					for i := 0; i < txns/g; i++ {
						id := wal.TxnID(w*1_000_000 + i + 1)
						for k := 0; k < perTxn; k++ {
							res := lock.KeyResource(1, []byte{byte(w), byte(i), byte(k)})
							if err := mgr.Acquire(id, res, lock.ModeX); err != nil {
								panic(err)
							}
						}
						mgr.ReleaseAll(id)
					}
				}(w)
			}
			for w := 0; w < g; w++ {
				<-done
			}
		})
		_ = nextID
		total := (txns / g) * g
		t.Add(g, total, d, fmt.Sprintf("%.0f", float64(total)/d.Seconds()))
	}

	// Deadlock resolution: opposing lock orders, victims counted.
	t2 := rig.NewTable("E12b — system-wide deadlock detection", "pairs run", "deadlock victims", "completed txns")
	pairs := 200
	victims, completed := 0, 0
	mgr := lock.NewManager()
	for i := 0; i < pairs; i++ {
		a, b := lock.RelResource(uint32(2*i)), lock.RelResource(uint32(2*i+1))
		t1, t2id := wal.TxnID(10_000+2*i), wal.TxnID(10_000+2*i+1)
		mgr.Acquire(t1, a, lock.ModeX)
		mgr.Acquire(t2id, b, lock.ModeX)
		errCh := make(chan error, 1)
		go func() { errCh <- mgr.Acquire(t1, b, lock.ModeX) }()
		time.Sleep(50 * time.Microsecond)
		err2 := mgr.Acquire(t2id, a, lock.ModeX)
		if err2 == lock.ErrDeadlock {
			victims++
			mgr.ReleaseAll(t2id)
		}
		if err := <-errCh; err == nil {
			completed++
		}
		mgr.ReleaseAll(t1)
		mgr.ReleaseAll(t2id)
	}
	t2.Add(pairs, victims, completed)
	return []*rig.Table{t, t2}
}

// --- MT: concurrent commit throughput ---

// mtGroupCommit measures the commit path under concurrency: worker
// sessions commit single-insert transactions against a file-backed log,
// sweeping worker count with group-commit batching off and on.
// Commits-per-fsync is the tell: above 1 means concurrent committers
// shared a single log force instead of each paying their own.
func mtGroupCommit() []*rig.Table {
	perWorker := n(300)
	t := rig.NewTable("MT — single-insert commit throughput (file-backed WAL, fsync per commit batch)",
		"workers", "batch window", "commits", "total", "commits/s", "fsyncs", "commits/fsync")
	t.Note = "the group-commit leader syncs once for every committer that arrived while the force was in flight; the sharded lock and buffer tables keep the rest of the path parallel"

	for _, window := range []time.Duration{0, 200 * time.Microsecond} {
		wlabel := "off"
		if window > 0 {
			wlabel = window.String()
		}
		for _, workers := range []int{1, 2, 4, 8} {
			dir, err := os.MkdirTemp("", "dmxbench-mt")
			if err != nil {
				panic(err)
			}
			db, err := dmx.Open(dmx.Config{
				LogPath:           filepath.Join(dir, "wal.log"),
				CommitBatchWindow: window,
				CheckpointEvery:   -1,
			})
			if err != nil {
				panic(err)
			}
			if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING heap"); err != nil {
				panic(err)
			}
			commitsBefore := db.Env.Obs.WAL.GroupCommits.Load()
			batchesBefore := db.Env.Obs.WAL.GroupBatches.Load()
			var wg sync.WaitGroup
			d := rig.Time(func() {
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						s := db.NewSession()
						for i := 0; i < perWorker; i++ {
							if _, err := s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'r')", w*1_000_000+i)); err != nil {
								panic(err)
							}
						}
					}(w)
				}
				wg.Wait()
			})
			commits := db.Env.Obs.WAL.GroupCommits.Load() - commitsBefore
			batches := db.Env.Obs.WAL.GroupBatches.Load() - batchesBefore
			cpf := float64(commits)
			if batches > 0 {
				cpf = float64(commits) / float64(batches)
			}
			db.Close()
			os.RemoveAll(dir)
			t.Add(workers, wlabel, commits, d,
				fmt.Sprintf("%.0f", float64(commits)/d.Seconds()),
				batches, fmt.Sprintf("%.2f", cpf))
		}
	}
	return []*rig.Table{t}
}

// --- SELFOBS: resource-accounting overhead ---

// selfObs measures what the per-transaction resource counters behind
// sys.stat_activity cost. Two workloads bracket the answer: the MT
// commit workload (file-backed WAL, 8 workers — the realistic case,
// where the fsync path dominates) and a tight single-session insert
// loop over an in-memory WAL (the adversarial case, where the atomic
// increments are the largest possible fraction of the work). Each is
// run with accounting enabled (the default) and disabled via
// txn.SetAccounting.
func selfObs() []*rig.Table {
	t := rig.NewTable("SELFOBS — per-transaction resource accounting overhead",
		"workload", "accounting", "commits", "total", "commits/s", "overhead")
	t.Note = "accounting is a handful of uncontended atomic adds per row touched; the observability tax stays within noise of the commit path"

	mtRun := func() (time.Duration, int64) {
		perWorker, workers := n(300), 8
		dir, err := os.MkdirTemp("", "dmxbench-selfobs")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		db, err := dmx.Open(dmx.Config{
			LogPath:           filepath.Join(dir, "wal.log"),
			CommitBatchWindow: 200 * time.Microsecond,
			CheckpointEvery:   -1,
		})
		if err != nil {
			panic(err)
		}
		defer db.Close()
		if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING heap"); err != nil {
			panic(err)
		}
		var wg sync.WaitGroup
		d := rig.Time(func() {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s := db.NewSession()
					for i := 0; i < perWorker; i++ {
						if _, err := s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'r')", w*1_000_000+i)); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			wg.Wait()
		})
		return d, int64(perWorker * workers)
	}

	tightRun := func() (time.Duration, int64) {
		commits := n(20_000)
		db, err := dmx.Open(dmx.Config{})
		if err != nil {
			panic(err)
		}
		defer db.Close()
		if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING heap"); err != nil {
			panic(err)
		}
		rel, err := db.Relation("t")
		if err != nil {
			panic(err)
		}
		d := rig.Time(func() {
			for i := 0; i < commits; i++ {
				tx := db.Begin()
				if _, err := rel.Insert(tx, dmx.Record{dmx.Int(int64(i)), dmx.Str("r")}); err != nil {
					panic(err)
				}
				if err := tx.Commit(); err != nil {
					panic(err)
				}
			}
		})
		return d, int64(commits)
	}

	workloads := []struct {
		label string
		run   func() (time.Duration, int64)
	}{
		{"MT commit (8 workers, file WAL)", mtRun},
		{"tight insert loop (mem WAL)", tightRun},
	}
	for _, wl := range workloads {
		var dOn, dOff time.Duration
		var commits int64
		// Interleave on/off runs and keep the best of three of each, so
		// cache warm-up and GC noise fall on both sides equally.
		for i := 0; i < 3; i++ {
			txn.SetAccounting(true)
			if d, c := wl.run(); dOn == 0 || d < dOn {
				dOn, commits = d, c
			}
			txn.SetAccounting(false)
			if d, _ := wl.run(); dOff == 0 || d < dOff {
				dOff = d
			}
		}
		txn.SetAccounting(true)
		overhead := (float64(dOn) - float64(dOff)) / float64(dOff) * 100
		t.Add(wl.label, "off", commits, dOff,
			fmt.Sprintf("%.0f", float64(commits)/dOff.Seconds()), "—")
		t.Add(wl.label, "on", commits, dOn,
			fmt.Sprintf("%.0f", float64(commits)/dOn.Seconds()),
			fmt.Sprintf("%+.1f%%", overhead))
	}
	return []*rig.Table{t}
}

// --- MVCC: snapshot-read throughput ---

// mvccReads measures the read-only transaction path: worker sessions
// fetch random rows of a heap relation in short transactions, once with
// ordinary (2PL, lock-acquiring) transactions and once with snapshot
// transactions, sweeping the worker count. The lock-requests column is
// the tell: snapshot mode performs zero lock-manager calls, so readers
// scale without touching the shared lock table.
func mvccReads() []*rig.Table {
	rows := n(2000)
	perWorker := n(200) // transactions per worker
	const fetchesPerTxn = 20
	t := rig.NewTable("MVCC — read-only throughput: locked (2PL) vs snapshot (lock-free) transactions",
		"workers", "mode", "reads", "total", "reads/s", "lock requests")
	t.Note = "snapshot transactions pin a commit-stamp high-water instead of acquiring locks; with no concurrent writers every read is served from current page state"

	db, err := dmx.Open(dmx.Config{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING heap"); err != nil {
		panic(err)
	}
	rel, err := db.Relation("t")
	if err != nil {
		panic(err)
	}
	seed := db.Begin()
	keys := make([]dmx.Key, rows)
	for i := range keys {
		if keys[i], err = rel.Insert(seed, dmx.Record{dmx.Int(int64(i)), dmx.Str("payload")}); err != nil {
			panic(err)
		}
	}
	if err := seed.Commit(); err != nil {
		panic(err)
	}

	for _, workers := range []int{1, 4, 8} {
		for _, mode := range []string{"locked", "snapshot"} {
			lockBefore := db.Env.Obs.Lock.Requests.Load()
			var wg sync.WaitGroup
			d := rig.Time(func() {
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						next := w * 131
						for i := 0; i < perWorker; i++ {
							var tx *dmx.Txn
							if mode == "snapshot" {
								tx = db.BeginReadOnly()
							} else {
								tx = db.Begin()
							}
							for j := 0; j < fetchesPerTxn; j++ {
								next = (next*1103515245 + 12345) & 0x7fffffff
								if _, err := rel.Fetch(tx, keys[next%rows], nil, nil); err != nil {
									panic(err)
								}
							}
							if err := tx.Commit(); err != nil {
								panic(err)
							}
						}
					}(w)
				}
				wg.Wait()
			})
			reads := workers * perWorker * fetchesPerTxn
			locks := db.Env.Obs.Lock.Requests.Load() - lockBefore
			t.Add(workers, mode, reads, d,
				fmt.Sprintf("%.0f", float64(reads)/d.Seconds()), locks)
		}
	}
	return []*rig.Table{t}
}

// --- TRACE: span-tracing overhead ---

// traceOverhead reruns the MT insert workload with the transaction tracer
// off, at 1-in-100 sampling, and fully on, so the cost of the span
// machinery is measured against the engine's own commit path rather than a
// microbenchmark. The sampled runs also report how many traces actually
// carried detailed span trees.
func traceOverhead() []*rig.Table {
	perWorker := n(300)
	const workers = 4
	t := rig.NewTable("TRACE — single-insert commit throughput vs trace sampling (file-backed WAL, 4 workers)",
		"sampling", "commits", "total", "commits/s", "sampled txns", "overhead")
	t.Note = "sampling is a per-transaction counter decision; unsampled transactions carry a nil trace and every trace call is a nil-receiver no-op"

	var baseline float64
	for _, cfg := range []struct {
		label  string
		sample float64
	}{{"off", 0}, {"1%", 0.01}, {"100%", 1}} {
		dir, err := os.MkdirTemp("", "dmxbench-trace")
		if err != nil {
			panic(err)
		}
		db, err := dmx.Open(dmx.Config{
			LogPath:         filepath.Join(dir, "wal.log"),
			CheckpointEvery: -1,
			TraceSample:     cfg.sample,
			TraceRing:       64,
		})
		if err != nil {
			panic(err)
		}
		if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING heap"); err != nil {
			panic(err)
		}
		var wg sync.WaitGroup
		d := rig.Time(func() {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					s := db.NewSession()
					for i := 0; i < perWorker; i++ {
						if _, err := s.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'r')", w*1_000_000+i)); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			wg.Wait()
		})
		sampled := db.Env.Tracer.Stats().Sampled
		db.Close()
		os.RemoveAll(dir)
		commits := workers * perWorker
		rate := float64(commits) / d.Seconds()
		overhead := "—"
		if baseline == 0 {
			baseline = rate
		} else {
			overhead = fmt.Sprintf("%+.1f%%", (baseline/rate-1)*100)
		}
		t.Add(cfg.label, commits, d, fmt.Sprintf("%.0f", rate), sampled, overhead)
	}
	return []*rig.Table{t}
}

// --- PAR: partitioned parallel scan and hash join vs serial ---

func parExec() []*rig.Table {
	rows := n(150_000)
	env := core.NewEnv(core.Config{})
	emp := rig.MustCreate(env, "emp", "memory", nil)
	rig.Load(env, emp, rows, 20)
	p := plan.New(env)

	t := rig.NewTable(fmt.Sprintf("PAR — partitioned parallel scan, %d records (GOMAXPROCS=%d)",
		rows, runtime.GOMAXPROCS(0)),
		"workers", "rows", "time", "rows/ms", "speedup")
	t.Note = "key-range partitions, one worker goroutine per partition, merged by an exchange; " +
		"the filter and record decode run in the workers"

	// A pass-everything filter keeps the row count fixed while giving the
	// workers per-record predicate work to parallelise.
	filter := expr.Ge(expr.Field(2), expr.Const(types.Float(0)))
	var serial time.Duration
	for _, workers := range []int{1, 4, 8} {
		b, err := p.Plan(plan.Query{Table: "emp", Filter: filter, Fields: []int{0, 2}, ForceDegree: workers})
		if err != nil {
			panic(err)
		}
		count := 0
		d := best3(func() {
			count = 0
			tx := env.Begin()
			rs, err := b.Execute(tx)
			if err != nil {
				panic(err)
			}
			for {
				_, ok, err := rs.Next()
				if err != nil {
					panic(err)
				}
				if !ok {
					break
				}
				count++
			}
			rs.Close()
			tx.Commit()
		})
		if workers == 1 {
			serial = d
		}
		t.Add(workers, count, d,
			fmt.Sprintf("%.0f", float64(count)/float64(d.Milliseconds()+1)),
			fmt.Sprintf("%.2fx", float64(serial)/float64(d)))
	}

	// Join companion: the same emp against a 10k-row inner, naive nested
	// loop vs single hash build at the planner's automatic degree.
	inner := n(10_000)
	dept := rig.MustCreate(env, "dept", "memory", nil)
	rig.WithTxn(env, func(tx *txn.Txn) {
		for i := 0; i < inner; i++ {
			if _, err := dept.Insert(tx, rig.EmpRecord(i, 4)); err != nil {
				panic(err)
			}
		}
	})
	outerN := n(500)
	jt := rig.NewTable(fmt.Sprintf("PAR — equi-join on dno, %d ⋈ %d", outerN, inner),
		"strategy", "rows", "time", "per row")
	for _, s := range []struct{ name, force string }{
		{"nested loop (rescan inner)", "nl"},
		{"hash join (build inner once)", "hash"},
	} {
		b, err := p.Plan(plan.Query{
			Table:     "emp",
			Filter:    expr.Lt(expr.Field(0), expr.Const(types.Int(int64(outerN)))),
			Fields:    []int{0},
			Join:      &plan.JoinSpec{Table: "dept", OuterCol: 1, InnerCol: 1, Fields: []int{0}},
			ForceJoin: s.force,
		})
		if err != nil {
			panic(err)
		}
		count := 0
		d := rig.Time(func() {
			tx := env.Begin()
			rs, err := b.Execute(tx)
			if err != nil {
				panic(err)
			}
			for {
				_, ok, err := rs.Next()
				if err != nil {
					panic(err)
				}
				if !ok {
					break
				}
				count++
			}
			rs.Close()
			tx.Commit()
		})
		jt.Add(s.name, count, d, rig.PerOp(d, count))
	}
	return []*rig.Table{t, jt}
}

// --- PART: hash-sharded relations over foreign shard servers ---

// partRouting measures the partitioned storage method's routing claims on
// a relation hash-sharded across four foreign servers: a point access by
// key talks to exactly one shard, a full scan scatter-gathers per-shard
// cursors, and every multi-shard commit pays a prepare round plus a
// decision delivery per touched shard (two-phase commit). The per-server
// message counters make the routing observable; a second table reports
// the coordinator's own counters for the whole run.
func partRouting() []*rig.Table {
	rows := n(8000)
	fetches := n(2000)
	txns := n(500)
	const shards = 4

	env := core.NewEnv(core.Config{})
	srvs := make([]*remote.Server, shards)
	for i := range srvs {
		srvs[i] = remote.NewServer(20 * time.Microsecond)
		partsm.AttachServer(env, fmt.Sprintf("s%d", i), srvs[i])
	}
	rel := rig.MustCreate(env, "emp", "part", core.AttrList{
		"key": "eno", "servers": "s0,s1,s2,s3", "batch": "100"})

	msgs := func() []int64 {
		out := make([]int64, shards)
		for i, srv := range srvs {
			out[i] = srv.Messages.Load()
		}
		return out
	}
	// touched reports how many shards exchanged messages since before, and
	// the total message count across them.
	touched := func(before []int64) (int, int64) {
		moved, total := 0, int64(0)
		for i, srv := range srvs {
			if d := srv.Messages.Load() - before[i]; d > 0 {
				moved++
				total += d
			}
		}
		return moved, total
	}

	t := rig.NewTable(fmt.Sprintf("PART — relation hash-sharded across %d foreign servers (20µs RTT)", shards),
		"operation", "ops", "per op", "shards touched", "messages")
	t.Note = "a point access by key routes to the single owning shard; scans scatter-gather " +
		"per-shard cursors; multi-shard commits run prepare and decision rounds (2PC)"

	before := msgs()
	var keys []types.Key
	dLoad := rig.Time(func() { keys = rig.Load(env, rel, rows, 40) })
	loadShards, loadMsgs := touched(before)
	t.Add("bulk load (one txn, one 2PC)", rows, rig.PerOp(dLoad, rows), loadShards, loadMsgs)

	before = msgs()
	dFetch := rig.Time(func() {
		tx := env.Begin()
		for i := 0; i < fetches; i++ {
			if _, err := rel.Fetch(tx, keys[(i*13)%len(keys)], []int{0}, nil); err != nil {
				panic(err)
			}
		}
		tx.Commit()
	})
	fetchShards, fetchMsgs := touched(before)
	t.Add("point reads by key (routed)", fetches, rig.PerOp(dFetch, fetches), fetchShards, fetchMsgs)

	before = msgs()
	count := 0
	dScan := rig.Time(func() {
		tx := env.Begin()
		scan, err := rel.OpenScan(tx, core.ScanOptions{Fields: []int{0}})
		if err != nil {
			panic(err)
		}
		count = rig.Drain(scan)
		tx.Commit()
	})
	scanShards, scanMsgs := touched(before)
	t.Add("full scan (scatter-gather)", count, rig.PerOp(dScan, count), scanShards, scanMsgs)

	before = msgs()
	d2pc := rig.Time(func() {
		for i := 0; i < txns; i++ {
			tx := env.Begin()
			for j := 0; j < 3; j++ {
				if _, err := rel.Insert(tx, rig.EmpRecord(1_000_000+i*3+j, 40)); err != nil {
					panic(err)
				}
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
		}
	})
	txnShards, txnMsgs := touched(before)
	t.Add("3-row insert txns (2PC each)", txns, rig.PerOp(d2pc, txns), txnShards, txnMsgs)

	s := env.Obs.Snapshot().Part
	ct := rig.NewTable("PART — coordinator counters for the run above", "counter", "value")
	ct.Note = "from env.Obs (also visible per relation through sys.stat_shards)"
	ct.Add("routed point reads", s.RoutedReads)
	ct.Add("routed single-shard scans", s.RoutedScans)
	ct.Add("scatter-gather scans", s.ScatterScans)
	ct.Add("shard prepares", s.Prepares)
	ct.Add("shard commit deliveries", s.Commits)
	ct.Add("shard abort deliveries", s.Aborts)
	ct.Add("commit acks lost", s.AckLost)
	ct.Add("in-doubt resolved at recovery", s.Resolved)
	return []*rig.Table{t, ct}
}

// --- A1: ablation — skip index maintenance when no indexed field changed ---

func a1SkipUnchanged() []*rig.Table {
	rows := n(5000)
	env := core.NewEnv(core.Config{})
	emp := rig.MustCreate(env, "emp", "memory", nil)
	keys := rig.Load(env, emp, rows, 20)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i1", "on": "dno"})
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i2", "on": "eno"})
	emp, _ = env.OpenRelationByName("emp")

	t := rig.NewTable("A1 — update cost with and without indexed-field changes (2 B-tree instances)",
		"update touches", "per update", "attachment log records/update")
	t.Note = `"the B-tree update operations should be able to detect when no indexed fields for a given index are modified"`

	measure := func(label string, mutate func(i int, rec types.Record)) {
		logBefore := env.Log.Len()
		d := rig.Time(func() {
			rig.WithTxn(env, func(tx *txn.Txn) {
				for i, k := range keys {
					rec := rig.EmpRecord(i, 20)
					mutate(i, rec)
					nk, err := emp.Update(tx, k, rec)
					if err != nil {
						panic(err)
					}
					keys[i] = nk
				}
			})
		})
		attRecords := 0
		for _, lr := range env.Log.Records()[logBefore:] {
			if lr.Kind == wal.RecUpdate && lr.Owner.Class == wal.OwnerAttachment {
				attRecords++
			}
		}
		t.Add(label, rig.PerOp(d, rows), float64(attRecords)/float64(rows))
	}
	measure("only the non-indexed pad (skip fires)", func(i int, rec types.Record) {
		rec[3] = types.Str("changed-pad")
	})
	measure("one indexed field (1 of 2 maintained)", func(i int, rec types.Record) {
		rec[1] = types.Int(int64((i + 1) % 10))
		rec[3] = types.Str("changed-pad")
	})
	measure("both indexed fields (2 of 2 maintained)", func(i int, rec types.Record) {
		rec[0] = types.Int(int64(i + 1_000_000))
		rec[1] = types.Int(int64((i + 3) % 10))
		rec[3] = types.Str("changed-pad")
	})
	return []*rig.Table{t}
}

// --- A2: ablation — remote scan batch size ---

func a2RemoteBatch() []*rig.Table {
	rows := n(2000)
	t := rig.NewTable("A2 — foreign-database scan cost vs batch size (20µs per message)",
		"batch size", "messages", "scan time", "per record")
	t.Note = "tuple-at-a-time access to remote data amplifies round trips; the remote storage method batches key-sequential accesses"

	for _, batch := range []int{1, 10, 100, 1000} {
		env := core.NewEnv(core.Config{})
		fed := remote.NewServer(20 * time.Microsecond)
		remotesm.AttachServer(env, "fed", fed)
		rel := rig.MustCreate(env, "t", "remote",
			core.AttrList{"server": "fed", "batch": fmt.Sprint(batch)})
		rig.Load(env, rel, rows, 20)
		before := fed.Messages.Load()
		d := rig.Time(func() {
			tx := env.Begin()
			scan, err := rel.OpenScan(tx, core.ScanOptions{Fields: []int{0}})
			if err != nil {
				panic(err)
			}
			if got := rig.Drain(scan); got != rows {
				panic(fmt.Sprintf("scanned %d", got))
			}
			tx.Commit()
		})
		t.Add(batch, fed.Messages.Load()-before, d, rig.PerOp(d, rows))
	}
	return []*rig.Table{t}
}

// --- A3: ablation — ordered access path vs scan + sort ---

func a3OrderedAccess() []*rig.Table {
	rows := n(30000)
	env := core.NewEnv(core.Config{PoolFrames: 2048})
	emp := rig.MustCreate(env, "emp", "heap", nil)
	rig.Load(env, emp, rows, 40)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "bysalary", "on": "salary"})
	p := plan.New(env)

	t := rig.NewTable("A3 — ORDER BY salary: streaming ordered access vs scan + sort",
		"query", "planner choice", "time")
	t.Note = `"the query planner will be able to determine the cost of ... scan[ning] a relation in a random order or with the tuples ordered by particular record fields" — the ordered pass fetches record-at-a-time, so it wins only when the caller stops early (top-k)`

	measure := func(label string, q plan.Query, pull int) {
		b, err := p.Plan(q)
		if err != nil {
			panic(err)
		}
		needSort := len(q.OrderBy) > 0 && !b.Ordered()
		d := best3(func() {
			tx := env.Begin()
			rs, err := b.Execute(tx)
			if err != nil {
				panic(err)
			}
			var all []types.Record
			for pull < 0 || len(all) < pull || needSort {
				rec, ok, err := rs.Next()
				if err != nil {
					panic(err)
				}
				if !ok {
					break
				}
				all = append(all, rec)
			}
			rs.Close()
			tx.Commit()
			if needSort {
				sort.Slice(all, func(i, j int) bool {
					return all[i][0].AsFloat() < all[j][0].AsFloat()
				})
			}
		})
		plan := b.Explain()
		if needSort {
			plan += " + sort"
		}
		t.Add(label, plan, d)
	}
	measure("top-10 (ORDER BY ... LIMIT 10)",
		plan.Query{Table: "emp", Fields: []int{2}, OrderBy: []int{2}, Limit: 10}, 10)
	measure("full table (ORDER BY, no limit)",
		plan.Query{Table: "emp", Fields: []int{2}, OrderBy: []int{2}}, -1)
	return []*rig.Table{t}
}

// --- OBS: engine-wide observability snapshot ---

// obsSnapshot drives every instrumented subsystem — per-extension dispatch
// (heap + b-tree index + check constraint), a veto with log-driven undo,
// lock contention, file-backed log appends and syncs, buffer traffic —
// then prints the Env.MetricsSnapshot JSON document.
func obsSnapshot() []*rig.Table {
	check.RegisterPredicate("obspos", expr.Ge(expr.Field(0), expr.Const(types.Int(0))))
	dir, err := os.MkdirTemp("", "dmxbench-obs")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	log, err := wal.Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		panic(err)
	}
	defer log.Close()
	env := core.NewEnv(core.Config{Log: log, PoolFrames: 64})
	rig.MustCreate(env, "emp", "heap", nil)
	rig.MustAttach(env, "emp", "btree", core.AttrList{"name": "i1", "on": "dno"})
	rig.MustAttach(env, "emp", "check", core.AttrList{"name": "pos", "predicate": "obspos"})
	emp, err := env.OpenRelationByName("emp")
	if err != nil {
		panic(err)
	}

	rows := n(1000)
	var keys []types.Key
	rig.WithTxn(env, func(tx *txn.Txn) {
		for i := 0; i < rows; i++ {
			k, err := emp.Insert(tx, rig.EmpRecord(i, 20))
			if err != nil {
				panic(err)
			}
			keys = append(keys, k)
		}
	})
	rig.WithTxn(env, func(tx *txn.Txn) {
		for i := 0; i < rows/10; i++ {
			if _, err := emp.Fetch(tx, keys[i], nil, nil); err != nil {
				panic(err)
			}
		}
		if _, err := emp.Update(tx, keys[0], rig.EmpRecord(rows, 20)); err != nil {
			panic(err)
		}
		if err := emp.Delete(tx, keys[1]); err != nil {
			panic(err)
		}
		scan, err := emp.OpenScan(tx, core.ScanOptions{})
		if err != nil {
			panic(err)
		}
		for {
			if _, _, ok, err := scan.Next(); err != nil || !ok {
				break
			}
		}
		scan.Close()
	})
	// A vetoed insert exercises the per-attachment veto counter and the
	// log-driven undo path.
	rig.WithTxn(env, func(tx *txn.Txn) {
		rec := rig.EmpRecord(rows+1, 20)
		rec[0] = types.Int(-1)
		if _, err := emp.Insert(tx, rec); err == nil {
			panic("vetoed insert accepted")
		}
	})
	// Lock contention: a second transaction waits on a key the first holds.
	hot := lock.KeyResource(999, []byte("hot"))
	tx1 := env.Begin()
	if err := tx1.Lock(hot, lock.ModeX); err != nil {
		panic(err)
	}
	released := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		tx1.Commit()
		close(released)
	}()
	tx2 := env.Begin()
	if err := tx2.Lock(hot, lock.ModeX); err != nil {
		panic(err)
	}
	tx2.Commit()
	<-released
	if err := log.Sync(); err != nil {
		panic(err)
	}

	fmt.Println("engine metrics snapshot (Env.MetricsSnapshot):")
	raw, err := json.MarshalIndent(env.MetricsSnapshot(), "", "  ")
	if err != nil {
		panic(err)
	}
	fmt.Println(string(raw))
	return nil
}

// --- CRASH: restart replay cost vs checkpoint interval ---

// crashRecovery measures what fuzzy checkpointing buys at restart: a
// small relation is churned by a long update history, the process
// "crashes" (the database is abandoned without Close), and the database
// is reopened with recovery. Without checkpoints redo replays the whole
// history; with them it replays the last snapshot plus the tail since,
// so restart time is bounded by the checkpoint interval.
func crashRecovery() []*rig.Table {
	rows, updates := n(50), n(2000)
	table := rig.NewTable(
		fmt.Sprintf("restart replay: %d-row relation, %d-update history", rows, updates),
		"checkpoint every", "checkpoints", "records at crash", "redo records", "restart time")
	for _, every := range []int{-1, 1024, 256, 64} {
		dir, err := os.MkdirTemp("", "dmxbench-crash")
		if err != nil {
			panic(err)
		}
		cfg := dmx.Config{LogPath: filepath.Join(dir, "wal.log"), CheckpointEvery: every}
		db, err := dmx.Open(cfg)
		if err != nil {
			panic(err)
		}
		if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING heap"); err != nil {
			panic(err)
		}
		for i := 0; i < rows; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'v0')", i)); err != nil {
				panic(err)
			}
		}
		for i := 0; i < updates; i++ {
			if _, err := db.Exec(fmt.Sprintf("UPDATE t SET v = 'v%d' WHERE id = %d", i, i%rows)); err != nil {
				panic(err)
			}
		}
		ckpts := db.Env.Obs.WAL.Checkpoints.Load()
		atCrash := db.Env.Log.Len()

		// Crash: no Close. Reopen from the surviving files with recovery.
		cfg.Recover, cfg.CheckpointEvery = true, -1
		var db2 *dmx.DB
		d := rig.Time(func() {
			if db2, err = dmx.Open(cfg); err != nil {
				panic(err)
			}
		})
		redo := db2.Env.Obs.WAL.RedoRecords.Load()
		db2.Close()
		os.RemoveAll(dir)

		label := "none"
		if every > 0 {
			label = strconv.Itoa(every)
		}
		table.Add(label, ckpts, atCrash, redo, d)
	}
	return []*rig.Table{table}
}
