package dmx

// Multi-worker stress harness: concurrent sessions run a mixed
// insert/update/delete/point-query workload over heap and memory relations
// carrying an index, a uniqueness constraint, referential integrity, and a
// materialised aggregate, while a checkpointer runs alongside. Between
// rounds the database is abandoned without Close (simulated crash) and
// reopened with log recovery. The harness then asserts the durability and
// integrity contract: exactly the committed rows survive, every child row
// has its parent, the index agrees with the base relation, eno values stay
// unique, and the materialised aggregate matches a from-scratch scan.
//
// The default shape is sized for `go test ./...`; set DMX_STRESS_DEEP=1
// for the larger soak used by `make race`.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dmx/internal/att/aggmv"
	"dmx/internal/core"
	"dmx/internal/lock"
)

const (
	stressDepts     = 4
	stressSharedEno = 8 // enos 1..8 are contended by every worker
)

type stressRow struct {
	name   string
	dno    int
	salary int
}

// stressModel is the acknowledged committed state: per-worker disjoint eno
// ranges plus the shared contended range (whose salaries are not modelled —
// concurrent winners are nondeterministic — only their existence).
type stressModel struct {
	mu     sync.Mutex
	rows   map[int]stressRow // committed rows in worker-private ranges
	shared map[int]bool      // contended rows: existence only
}

func (m *stressModel) commit(pend map[int]*stressRow) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for eno, r := range pend {
		if r == nil {
			delete(m.rows, eno)
		} else {
			m.rows[eno] = *r
		}
	}
}

func stressWorkerBase(w int) int { return (w + 1) * 10000 }

func TestStressConcurrentWorkload(t *testing.T) {
	workers, ops, rounds := 4, 120, 2
	if os.Getenv("DMX_STRESS_DEEP") != "" {
		workers, ops, rounds = 8, 400, 3
	}
	runStress(t, workers, ops, rounds)
}

func runStress(t *testing.T, workers, ops, rounds int) {
	dir := t.TempDir()
	cfg := Config{
		LogPath:           filepath.Join(dir, "wal.log"),
		DiskPath:          filepath.Join(dir, "data.db"),
		PoolFrames:        32, // small pool: dirty evictions exercise WAL-before-data
		CheckpointEvery:   400,
		CommitBatchWindow: 100 * time.Microsecond,
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"CREATE TABLE dept (dno INT NOT NULL, dname STRING) USING memory",
		"CREATE TABLE emp (eno INT NOT NULL, name STRING, dno INT NOT NULL, salary INT) USING heap",
		"CREATE INDEX empbyeno ON emp (eno)",
		"CREATE ATTACHMENT unique ON emp WITH (on=eno)",
		"CREATE ATTACHMENT refint ON emp WITH (name=empdept, role=child, on=dno, peer=dept, peerkey=dno)",
		"CREATE ATTACHMENT aggregate ON emp WITH (name=salsum, group=dno, value=salary)",
	}
	if _, err := db.Exec(stmts...); err != nil {
		t.Fatal(err)
	}
	for d := 1; d <= stressDepts; d++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO dept VALUES (%d, 'dept%d')", d, d)); err != nil {
			t.Fatal(err)
		}
	}
	model := &stressModel{rows: make(map[int]stressRow), shared: make(map[int]bool)}
	for eno := 1; eno <= stressSharedEno; eno++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO emp VALUES (%d, 'shared%d', %d, 100)",
			eno, eno, 1+eno%stressDepts)); err != nil {
			t.Fatal(err)
		}
		model.shared[eno] = true
	}

	for round := 0; round < rounds; round++ {
		stressStorm(t, db, model, workers, ops, round)
		// Group commit must have engaged while the workers were committing
		// concurrently (checked before the counters die with the handles).
		if snap := db.Env.Obs.Snapshot(); snap.WAL.GroupCommits == 0 {
			t.Fatalf("round %d: no group commits recorded", round)
		}
		// Simulated crash: abandon the handles without Close — the files
		// keep whatever the engine made durable — then recover.
		db, err = Open(Config{
			LogPath:           cfg.LogPath,
			DiskPath:          cfg.DiskPath,
			PoolFrames:        cfg.PoolFrames,
			CheckpointEvery:   cfg.CheckpointEvery,
			CommitBatchWindow: cfg.CommitBatchWindow,
			Recover:           true,
		})
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		stressVerify(t, db, model, round)
	}
	// Clean shutdown and one final recovery-free check path.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(Config{
		LogPath:  cfg.LogPath,
		DiskPath: cfg.DiskPath,
		Recover:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	stressVerify(t, db, model, rounds)
}

// stressStorm runs the concurrent mixed workload for one round.
func stressStorm(t *testing.T, db *DB, model *stressModel, workers, ops, round int) {
	t.Helper()
	stop := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				if err := db.Checkpoint(); err != nil && !errors.Is(err, core.ErrCheckpointBusy) {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stressWorker(t, db, model, w, ops, round)
		}(w)
	}
	wg.Wait()
	close(stop)
	ckptWG.Wait()
}

// stressWorker drives one session: private-range inserts, updates, deletes
// and point reads, deliberate rollbacks, and lock-order-inverted updates on
// the shared range that legitimately deadlock (victim rolls back).
func stressWorker(t *testing.T, db *DB, model *stressModel, w, ops, round int) {
	rng := rand.New(rand.NewSource(int64(round*1000 + w)))
	s := db.NewSession()
	base := stressWorkerBase(w)
	next := base + round*1000 // fresh eno space each round
	// exec runs one autocommit statement. A deadlock victim is a clean
	// failure — the engine aborted the transaction — reported as ok=false;
	// any other error is fatal for the harness. Multi-resource writes
	// (row + index + unique + refint parent + aggregate group) legitimately
	// deadlock under this mix.
	exec := func(stmt string) (ok bool) {
		t.Helper()
		if _, err := s.Exec(stmt); err != nil {
			if errors.Is(err, lock.ErrDeadlock) {
				return false
			}
			t.Errorf("w%d: %q: %v", w, stmt, err)
			return false
		}
		return true
	}
	for i := 0; i < ops && !t.Failed(); i++ {
		switch k := rng.Intn(10); {
		case k < 4: // autocommit insert in the private range
			eno := next
			next++
			r := stressRow{name: fmt.Sprintf("w%d-%d", w, eno), dno: 1 + rng.Intn(stressDepts), salary: 50 + rng.Intn(200)}
			if exec(fmt.Sprintf("INSERT INTO emp VALUES (%d, '%s', %d, %d)", eno, r.name, r.dno, r.salary)) {
				model.commit(map[int]*stressRow{eno: &r})
			}
		case k < 6: // update or delete a previously committed private row
			model.mu.Lock()
			var eno int
			var row stressRow
			for e, r := range model.rows {
				if e >= base && e < base+10000 {
					eno, row = e, r
					break
				}
			}
			model.mu.Unlock()
			if eno == 0 {
				continue
			}
			if rng.Intn(3) == 0 {
				if exec(fmt.Sprintf("DELETE FROM emp WHERE eno = %d", eno)) {
					model.commit(map[int]*stressRow{eno: nil})
				}
			} else {
				row.salary = 50 + rng.Intn(500)
				row.dno = 1 + rng.Intn(stressDepts)
				if exec(fmt.Sprintf("UPDATE emp SET salary = %d, dno = %d WHERE eno = %d", row.salary, row.dno, eno)) {
					model.commit(map[int]*stressRow{eno: &row})
				}
			}
		case k < 7: // deliberate rollback: the insert must never surface
			eno := 900000 + w*1000 + i
			stressTxn(t, s, w, []string{fmt.Sprintf("INSERT INTO emp VALUES (%d, 'ghost', 1, 1)", eno)}, true)
		case k < 9: // contended multi-row txn in shuffled order: may deadlock
			a, b := 1+rng.Intn(stressSharedEno), 1+rng.Intn(stressSharedEno)
			stressTxn(t, s, w, []string{
				fmt.Sprintf("UPDATE emp SET salary = %d WHERE eno = %d", 100+rng.Intn(100), a),
				fmt.Sprintf("UPDATE emp SET salary = %d WHERE eno = %d", 100+rng.Intn(100), b),
			}, false)
		default: // indexed point read of a shared row
			eno := 1 + rng.Intn(stressSharedEno)
			res, err := s.Exec(fmt.Sprintf("SELECT name, dno FROM emp WHERE eno = %d", eno))
			if err != nil {
				if !errors.Is(err, lock.ErrDeadlock) {
					t.Errorf("w%d read: %v", w, err)
				}
				continue
			}
			if len(res.Rows) != 1 {
				t.Errorf("w%d read eno %d: %d rows", w, eno, len(res.Rows))
			}
		}
	}
}

// stressTxn runs stmts inside an explicit transaction, rolling back on a
// deadlock victim (or always, when rollback is set). Any non-deadlock
// failure is fatal for the harness.
func stressTxn(t *testing.T, s *Session, w int, stmts []string, rollback bool) {
	t.Helper()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Errorf("w%d begin: %v", w, err)
		return
	}
	end := "COMMIT"
	if rollback {
		end = "ROLLBACK"
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(stmt); err != nil {
			if !errors.Is(err, lock.ErrDeadlock) {
				t.Errorf("w%d: %q: %v", w, stmt, err)
			}
			end = "ROLLBACK"
			break
		}
	}
	if _, err := s.Exec(end); err != nil {
		t.Errorf("w%d %s: %v", w, end, err)
	}
}

// stressVerify checks the full durability and integrity contract against
// the acknowledged model after a restart.
func stressVerify(t *testing.T, db *DB, model *stressModel, round int) {
	t.Helper()
	s := db.NewSession()
	res, err := s.Exec("SELECT eno, name, dno, salary FROM emp")
	if err != nil {
		t.Fatalf("round %d: scan: %v", round, err)
	}
	model.mu.Lock()
	defer model.mu.Unlock()
	seen := make(map[int]stressRow, len(res.Rows))
	for _, r := range res.Rows {
		eno := int(r[0].AsInt())
		if _, dup := seen[eno]; dup {
			t.Fatalf("round %d: duplicate eno %d (unique constraint violated)", round, eno)
		}
		seen[eno] = stressRow{name: r[1].S, dno: int(r[2].AsInt()), salary: int(r[3].AsInt())}
	}
	if want, got := len(model.rows)+len(model.shared), len(seen); want != got {
		t.Fatalf("round %d: %d rows survive, want %d", round, got, want)
	}
	for eno, want := range model.rows {
		got, ok := seen[eno]
		if !ok {
			t.Fatalf("round %d: committed row %d lost", round, eno)
		}
		if got != want {
			t.Fatalf("round %d: row %d = %+v, want %+v", round, eno, got, want)
		}
	}
	for eno := range model.shared {
		if _, ok := seen[eno]; !ok {
			t.Fatalf("round %d: shared row %d lost", round, eno)
		}
	}
	// Referential integrity: every emp.dno has its dept parent.
	sums := map[int]float64{}
	counts := map[int]int64{}
	for eno, r := range seen {
		if r.dno < 1 || r.dno > stressDepts {
			t.Fatalf("round %d: row %d references missing dept %d", round, eno, r.dno)
		}
		sums[r.dno] += float64(r.salary)
		counts[r.dno]++
	}
	// Index path agrees with the base relation (spot-check via point query).
	checked := 0
	for eno, want := range model.rows {
		if checked >= 20 {
			break
		}
		checked++
		res, err := s.Exec(fmt.Sprintf("SELECT salary FROM emp WHERE eno = %d", eno))
		if err != nil {
			t.Fatalf("round %d: point query %d: %v", round, eno, err)
		}
		if len(res.Rows) != 1 || int(res.Rows[0][0].AsInt()) != want.salary {
			t.Fatalf("round %d: index point query %d = %v, want salary %d", round, eno, res.Rows, want.salary)
		}
	}
	// Materialised aggregate matches the from-scratch scan.
	rd, ok := db.Env.Cat.ByName("emp")
	if !ok {
		t.Fatalf("round %d: emp descriptor missing", round)
	}
	instAny, err := db.Env.AttachmentInstance(rd, core.AttAggMV)
	if err != nil {
		t.Fatalf("round %d: aggregate instance: %v", round, err)
	}
	inst := instAny.(*aggmv.Instance)
	for d := 1; d <= stressDepts; d++ {
		sum, count, err := inst.Lookup("salsum", Int(int64(d)))
		if err != nil {
			t.Fatalf("round %d: aggregate lookup dept %d: %v", round, d, err)
		}
		if sum != sums[d] || count != counts[d] {
			t.Fatalf("round %d: aggregate dept %d = (%v, %d), scan says (%v, %d)",
				round, d, sum, count, sums[d], counts[d])
		}
	}
}
