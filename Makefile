GO ?= go

.PHONY: build test check bench crash fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: tier-1 build + tests, then the full suite
# again under the race detector with caching disabled (the crash-point
# harness sweep in crash_test.go runs in both passes).
check: build
	$(GO) test ./...
	$(GO) test -race -count=1 ./...

# crash runs the full deterministic crash-point fault-injection matrix
# (every site, later-hit and torn-write variants) under the race detector.
crash:
	DMX_CRASH_DEEP=1 $(GO) test -race -count=1 -run 'TestCrash' -v .

bench:
	$(GO) run ./cmd/dmxbench

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
