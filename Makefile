GO ?= go

.PHONY: build test check bench crash race model ingest par part fmt vet staticcheck trace-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: tier-1 build + vet + static analysis +
# tests with coverage in shuffled order (catches order-dependent tests
# and tracks the covered fraction), then the full suite again under the
# race detector with caching disabled (the crash-point harness sweep in
# crash_test.go runs in both passes). The shuffled pass includes the
# fixed-seed model run: TestModel (40 seeds) and TestModelCrashRecovery
# (12 crash-recovery cycles) cross-check the engine against the
# reference model on every gate — the generated workloads include
# read-only snapshot transactions, so snapshot visibility is
# cross-checked against the oracle's captured committed state here too.
# The partitioned suite rides in both passes at its small default shape:
# TestModelPart/TestModelPartCrash (15/8 seeds), the TestCrashPart2PC
# two-phase-commit matrix, and the TestStressPartConcurrent2PC storm;
# `make part` runs the same suite at soak depth.
check: build vet staticcheck
	$(GO) test -shuffle=on -cover ./...
	$(GO) test -race -count=1 ./...
	$(MAKE) par

# staticcheck (honnef.co/go/tools) is part of the check gate — the tree
# is clean under it, so it runs ungated. Install with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
staticcheck:
	staticcheck ./...

# trace-demo smoke-tests the observability surface end to end: traced
# workload, debug HTTP server, and a self-read of /metrics, /traces, and
# /healthz (non-zero exit on any malformed endpoint).
trace-demo:
	$(GO) run ./examples/tracedemo

# race is the deep concurrency soak: the multi-worker stress harness
# (stress_test.go) at its larger shape — more workers, more operations,
# more crash-restart rounds — under the race detector.
race:
	DMX_STRESS_DEEP=1 $(GO) test -race -count=1 -run 'TestStress' -v .

# model is the differential-testing soak: many more generated workloads
# than the check gate runs, engine vs reference model, including
# file-backed crash-recovery cycles. Override the ranges to go deeper:
#   make model DMX_MODEL_SEEDS=2000 DMX_MODEL_CRASH_SEEDS=500
DMX_MODEL_SEEDS ?= 500
DMX_MODEL_CRASH_SEEDS ?= 100
model:
	DMX_MODEL_SEEDS=$(DMX_MODEL_SEEDS) DMX_MODEL_CRASH_SEEDS=$(DMX_MODEL_CRASH_SEEDS) \
		$(GO) test -count=1 -run 'TestModel$$|TestModelCrashRecovery' -v .

# crash runs the full deterministic crash-point fault-injection matrix
# (every site, later-hit and torn-write variants, plus the LSM ingest
# matrix over the flush and compaction sites) under the race detector.
crash:
	DMX_CRASH_DEEP=1 $(GO) test -race -count=1 -run 'TestCrash' -v .

# ingest is the LSM storage-method soak: seeded differential fuzzing of
# insert/update/delete/tombstone workloads across flush and compaction
# boundaries (engine vs reference oracle, including crash-recovery
# cycles at the lsm.flush and lsm.compact sites), plus the deep LSM
# crash matrix. Override the seed ranges to go deeper:
#   make ingest DMX_INGEST_SEEDS=2000 DMX_INGEST_CRASH_SEEDS=500
DMX_INGEST_SEEDS ?= 400
DMX_INGEST_CRASH_SEEDS ?= 100
ingest:
	DMX_INGEST_SEEDS=$(DMX_INGEST_SEEDS) DMX_INGEST_CRASH_SEEDS=$(DMX_INGEST_CRASH_SEEDS) 		DMX_CRASH_DEEP=1 $(GO) test -count=1 -run 'TestModelIngest|TestCrashLSM' -v .

# part is the partitioned storage-method soak: seeded differential
# fuzzing of relation x hash-sharded over three foreign servers (every
# scan merges per-shard cursors, nearly every commit runs two-phase),
# crash-recovery cycles at the part.decide site, the deterministic 2PC
# crash matrix including commit-ack loss, and the concurrent 2PC storm
# under the race detector. Override the seed ranges to go deeper:
#   make part DMX_PART_SEEDS=2000 DMX_PART_CRASH_SEEDS=500
DMX_PART_SEEDS ?= 400
DMX_PART_CRASH_SEEDS ?= 100
part:
	DMX_PART_SEEDS=$(DMX_PART_SEEDS) DMX_PART_CRASH_SEEDS=$(DMX_PART_CRASH_SEEDS) \
		DMX_CRASH_DEEP=1 DMX_STRESS_DEEP=1 \
		$(GO) test -race -count=1 -run 'TestModelPart|TestCrashPart|TestStressPart' -v .

# par is the parallel-execution race soak: the exchange operator's
# early-close shutdown paths, the partitioned-scan differentials across
# storage methods, and the hash join, repeated under the race detector.
par:
	$(GO) test -race -count=3 -run 'TestExchangeEarlyClose|TestParallelScan|TestParallelHashJoin|TestDuplicateKeyJoin' ./internal/plan/

bench:
	$(GO) run ./cmd/dmxbench

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
