GO ?= go

.PHONY: build test check bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: tier-1 build + tests, then the full suite
# again under the race detector with caching disabled.
check: build
	$(GO) test ./...
	$(GO) test -race -count=1 ./...

bench:
	$(GO) run ./cmd/dmxbench

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
