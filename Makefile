GO ?= go

.PHONY: build test check bench crash race fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: tier-1 build + vet + tests, then the full
# suite again under the race detector with caching disabled (the
# crash-point harness sweep in crash_test.go runs in both passes).
check: build vet
	$(GO) test ./...
	$(GO) test -race -count=1 ./...

# race is the deep concurrency soak: the multi-worker stress harness
# (stress_test.go) at its larger shape — more workers, more operations,
# more crash-restart rounds — under the race detector.
race:
	DMX_STRESS_DEEP=1 $(GO) test -race -count=1 -run 'TestStress' -v .

# crash runs the full deterministic crash-point fault-injection matrix
# (every site, later-hit and torn-write variants) under the race detector.
crash:
	DMX_CRASH_DEEP=1 $(GO) test -race -count=1 -run 'TestCrash' -v .

bench:
	$(GO) run ./cmd/dmxbench

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
