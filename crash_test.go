package dmx

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmx/internal/core"
	"dmx/internal/fault"
)

// crashState records what one workload run acknowledged before the
// injected crash, keyed by scenario name so Verify can check it after
// reopening from the same directory.
type crashState struct {
	dir      string
	ddlAcked int   // 0 none, 1 CREATE TABLE, 2 + CREATE INDEX
	acked    []int // ids whose INSERT statement returned success
	inFlight int   // id whose INSERT was running at the crash (0 none)
}

// crashPad makes heap pages fill quickly so buffer evictions (and with
// them the buffer.flush and pagefile.write crash sites) happen within a
// short workload.
var crashPad = strings.Repeat("x", 500)

const crashMaxRows = 400

// runCrashMatrix drives the fault-injection harness: per scenario it runs
// a fresh file-backed database until the armed crash site kills it (the
// database is deliberately not closed — the process died), then reopens
// from the surviving files, recovers, and asserts the durability
// contract: acknowledged work fully visible, unacknowledged work atomic.
func runCrashMatrix(t *testing.T, scenarios []fault.Scenario, checkpointEvery int) {
	t.Helper()
	root := t.TempDir()
	states := make(map[string]*crashState, len(scenarios))

	h := &fault.Harness{
		Scenarios: scenarios,
		Workload: func(s fault.Scenario, inj *fault.Injector) error {
			st := &crashState{dir: filepath.Join(root, s.Name)}
			states[s.Name] = st
			if err := os.MkdirAll(st.dir, 0o755); err != nil {
				return err
			}
			db, err := Open(Config{
				LogPath:         filepath.Join(st.dir, "wal.log"),
				DiskPath:        filepath.Join(st.dir, "data.db"),
				PoolFrames:      4, // force dirty-page evictions
				CheckpointEvery: checkpointEvery,
				Faults:          inj,
			})
			if err != nil {
				return err
			}
			// No db.Close(): the injected crash is a process death, so the
			// files keep whatever the engine managed to make durable.
			if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, pad STRING) USING heap"); err != nil {
				return err
			}
			st.ddlAcked = 1
			if _, err := db.Exec("CREATE INDEX byid ON t (id)"); err != nil {
				return err
			}
			st.ddlAcked = 2
			for i := 1; i <= crashMaxRows; i++ {
				st.inFlight = i
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, '%s')", i, crashPad)); err != nil {
					return err
				}
				st.inFlight = 0
				st.acked = append(st.acked, i)
			}
			return fmt.Errorf("workload finished without crashing")
		},
		Verify: func(tb fault.TB, s fault.Scenario) {
			st := states[s.Name]
			db, err := Open(Config{
				LogPath:         filepath.Join(st.dir, "wal.log"),
				DiskPath:        filepath.Join(st.dir, "data.db"),
				PoolFrames:      4,
				CheckpointEvery: -1,
				Recover:         true,
			})
			if err != nil {
				tb.Errorf("%s: reopen: %v", s.Name, err)
				return
			}
			defer db.Close()

			res, err := db.Exec("SELECT id FROM t")
			if err != nil {
				// The table may be legitimately absent only when its CREATE
				// was never acknowledged.
				if st.ddlAcked == 0 {
					return
				}
				tb.Errorf("%s: table lost after acked CREATE: %v", s.Name, err)
				return
			}
			if st.ddlAcked == 0 && !s.ExpectDurable {
				tb.Errorf("%s: unacked CREATE TABLE survived recovery", s.Name)
				return
			}
			got := make(map[int]bool, len(res.Rows))
			for _, row := range res.Rows {
				got[int(row[0].AsInt())] = true
			}
			for _, id := range st.acked {
				if !got[id] {
					tb.Errorf("%s: acked row %d lost (recovered %d rows)", s.Name, id, len(got))
				}
			}
			for id := range got {
				if id <= len(st.acked) {
					continue
				}
				if s.ExpectDurable && id == st.inFlight {
					continue // durable but unacknowledged: allowed at this site
				}
				tb.Errorf("%s: unacked row %d visible after recovery", s.Name, id)
			}
			// The equality path exercises the B-tree access path, which
			// recovery rebuilt from the recovered relation contents.
			if st.ddlAcked == 2 {
				for _, id := range []int{1, len(st.acked)} {
					if id < 1 {
						continue
					}
					r, err := db.Exec(fmt.Sprintf("SELECT pad FROM t WHERE id = %d", id))
					if err != nil || len(r.Rows) != 1 {
						tb.Errorf("%s: index lookup id=%d: %d rows, %v", s.Name, id, len(r.Rows), err)
					}
				}
			}
		},
	}
	h.Run(t)
}

// TestCrashMatrix sweeps every registered crash site (deep variants with
// DMX_CRASH_DEEP=1, as run by `make crash`).
func TestCrashMatrix(t *testing.T) {
	runCrashMatrix(t, fault.Matrix(os.Getenv("DMX_CRASH_DEEP") != ""), -1)
}

// TestCrashMatrixWithCheckpoints repeats the sweep with aggressive
// checkpointing, so crashes land before, inside, and after checkpoint
// writes and recovery starts from a truncated log.
func TestCrashMatrixWithCheckpoints(t *testing.T) {
	runCrashMatrix(t, fault.Matrix(os.Getenv("DMX_CRASH_DEEP") != ""), 8)
}

// TestCheckpointBoundsRedo asserts the point of checkpointing: restart
// redo work is bounded by the database size plus the checkpoint interval
// instead of the whole update history.
func TestCheckpointBoundsRedo(t *testing.T) {
	run := func(every int) (checkpoints, redo int64) {
		dir := t.TempDir()
		cfg := Config{LogPath: filepath.Join(dir, "wal.log"), CheckpointEvery: every}
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec("CREATE TABLE t (id INT NOT NULL, v STRING) USING heap"); err != nil {
			t.Fatal(err)
		}
		// A small relation churned by a long update history: the snapshot
		// in each checkpoint stays 10 records, the history grows to 400.
		for i := 0; i < 10; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'v0')", i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 400; i++ {
			if _, err := db.Exec(fmt.Sprintf("UPDATE t SET v = 'v%d' WHERE id = %d", i, i%10)); err != nil {
				t.Fatal(err)
			}
		}
		checkpoints = db.Env.Obs.WAL.Checkpoints.Load()
		// Crash (no Close): reopen and measure how much history redo replays.
		cfg.Recover = true
		cfg.CheckpointEvery = -1
		db2, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer db2.Close()
		res, err := db2.Exec("SELECT v FROM t WHERE id = 9")
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "v399" {
			t.Fatalf("recovered state wrong: %+v, %v", res, err)
		}
		return checkpoints, db2.Env.Obs.WAL.RedoRecords.Load()
	}

	ckpts, bounded := run(64)
	if ckpts == 0 {
		t.Fatal("no checkpoints taken with CheckpointEvery=64")
	}
	_, full := run(-1)
	if bounded*2 >= full {
		t.Fatalf("checkpointing did not bound redo: %d vs %d records", bounded, full)
	}
}

// TestCrashBetweenCommitForceAndStampPublication pins the commit-stamp
// recovery contract: the crash lands after the commit record's fsync but
// before the commit's stamp is published into the in-memory high-water.
// After restart the transaction must be fully in — redo replays it and
// the re-derived stamp high-water covers it — so locked reads and
// snapshot reads agree on the recovered row, never a half-published
// state where the row is present but invisible to snapshots.
func TestCrashBetweenCommitForceAndStampPublication(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New()
	cfg := Config{
		LogPath:         filepath.Join(dir, "wal.log"),
		DiskPath:        filepath.Join(dir, "data.db"),
		CheckpointEvery: -1,
		Faults:          inj,
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(
		"CREATE TABLE t (id INT NOT NULL, v STRING) USING heap",
		"INSERT INTO t VALUES (1, 'one')",
	); err != nil {
		t.Fatal(err)
	}
	inj.Arm(fault.SiteWALSynced, 1)
	if _, err := db.Exec("INSERT INTO t VALUES (2, 'two')"); err == nil {
		t.Fatal("commit survived the armed wal.synced crash")
	}
	// No db.Close(): the injected crash is a process death.

	cfg2 := cfg
	cfg2.Faults = nil
	cfg2.Recover = true
	db2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec("SELECT id FROM t")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("locked read after recovery: %+v, %v", res, err)
	}
	rel, err := db2.Relation("t")
	if err != nil {
		t.Fatal(err)
	}
	ro := db2.BeginReadOnly()
	sc, err := rel.OpenScan(ro, core.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for {
		_, rec, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[rec[0].AsInt()] = true
	}
	sc.Close()
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if !seen[1] || !seen[2] || len(seen) != 2 {
		t.Fatalf("snapshot read after recovery saw %v, want rows 1 and 2", seen)
	}
}
